// Command eunobench regenerates every table and figure of the paper's
// evaluation (Section 5) on the emulated-HTM substrate. Each subcommand
// prints the rows/series of one figure; `all` runs the whole suite.
//
// Usage:
//
//	eunobench [flags] <fig1|fig2|fig8|fig9|fig10|fig11|fig12|fig13|mem|all>
//
// Absolute numbers are not expected to match the paper (the substrate is a
// simulator, not a 20-core Haswell); the shapes — who wins, by what rough
// factor, where the collapse happens — are the reproduction target. See
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"eunomia/internal/core"
	"eunomia/internal/harness"
	"eunomia/internal/htm"
	"eunomia/internal/metrics"
	"eunomia/internal/workload"
)

var (
	keys    = flag.Uint64("keys", 100_000, "key-space size (the paper uses 100M)")
	ops     = flag.Int("ops", 1500, "operations per thread per data point")
	threads = flag.Int("threads", 20, "maximum thread count (the paper's machine has 20 cores)")
	seed    = flag.Uint64("seed", 42, "base RNG seed")
	quick   = flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	csv     = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	chart   = flag.Bool("chart", false, "also render series figures as ASCII charts")
	// resilience flips every harness run onto the hardened retry policy
	// (backoff, lemming-wait, watchdog, queued fallback, storm detector).
	// Figures measured with it on are no longer the paper's fragile
	// baseline — that is the point of the comparison.
	resilience = flag.Bool("resilience", false, "enable the abort-storm resilience layer for all runs")
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eunobench [flags] <fig1|fig2|fig8|fig9|fig10|fig11|fig12|fig13|mem|scan|latency|adjacency|validate|hostbench|hostperf|hotkey|cluster|storm|recover|abortmix|heatmap|swarm|swarmchaos|reshardchaos|all>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	figs := map[string]func(){
		"fig1":       fig1,
		"fig2":       fig2,
		"fig8":       fig8,
		"fig9":       fig9,
		"fig10":      fig10,
		"fig11":      fig11,
		"fig12":      fig12,
		"fig13":      fig13,
		"mem":        mem,
		"scan":       scanCost,
		"latency":    latency,
		"adjacency":  adjacency,
		"validate":   validateCmd,
		"hostbench":  hostbenchCmd,
		"hostperf":   hostperfCmd,
		"hotkey":     hotkeyCmd,
		"cluster":    clusterCmd,
		"storm":      stormCmd,
		"recover":    recoverCmd,
		"abortmix":   abortmixCmd,
		"heatmap":    heatmapCmd,
		"swarm":        func() { swarmCmd(false) },
		"swarmchaos":   func() { swarmCmd(true) },
		"reshardchaos": reshardChaosCmd,
	}
	name := strings.ToLower(flag.Arg(0))
	stopCPU := startCPUProfile()
	defer writeMemProfile()
	defer stopCPU()
	defer flushTrace()
	if name == "all" {
		for _, n := range []string{"fig1", "fig2", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "mem"} {
			figs[n]()
		}
		return
	}
	fn, ok := figs[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "eunobench: unknown figure %q\n", name)
		os.Exit(2)
	}
	fn()
}

func emit(t *harness.Table) {
	if *csv {
		fmt.Printf("# %s\n", t.Title)
		if err := t.CSV(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		return
	}
	t.Fprint(os.Stdout)
}

func thetas() []float64 {
	if *quick {
		return []float64{0.2, 0.9, 0.99}
	}
	return []float64{0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99}
}

func threadSweep() []int {
	full := []int{1, 2, 4, 8, 12, 16, 20}
	if *quick {
		full = []int{1, 4, 16}
	}
	var out []int
	for _, n := range full {
		if n <= *threads {
			out = append(out, n)
		}
	}
	return out
}

func baseCfg(kind harness.TreeKind) harness.Config {
	return harness.Config{
		Tree:         kind,
		Threads:      *threads,
		Keys:         *keys,
		Dist:         workload.Spec{Kind: workload.Zipfian, Theta: 0.9},
		Mix:          workload.DefaultMix,
		OpsPerThread: *ops,
		Seed:         *seed,
		Resilience:   *resilience,
	}
}

func mops(r harness.Result) string { return metrics.FormatOps(r.Throughput) }

// fig1 — Figure 1: HTM-B+Tree throughput under different contention rates.
func fig1() {
	tbl := harness.Table{
		Title:  "Figure 1: HTM-B+Tree performance under different contention rates (" + fmt.Sprint(*threads) + " threads)",
		Header: []string{"theta", "throughput(ops/s)", "aborts/op", "wasted-cycles%"},
	}
	for _, th := range thetas() {
		cfg := baseCfg(harness.HTMBTree)
		cfg.Dist.Theta = th
		r := harness.Run(cfg)
		tbl.AddRow(fmt.Sprintf("%.2f", th), mops(r), harness.F2(r.AbortsPerOp), harness.F1(r.WastedPct))
	}
	emit(&tbl)
}

// fig2 — Figure 2: HTM aborts incurred by different reasons, per theta.
func fig2() {
	tbl := harness.Table{
		Title: "Figure 2: HTM-B+Tree aborts by reason (aborts per operation)",
		Header: []string{"theta", "total", "diff-record(false)", "shared-metadata",
			"same-record(true)", "capacity", "fallback-lock"},
	}
	for _, th := range thetas() {
		cfg := baseCfg(harness.HTMBTree)
		cfg.Dist.Theta = th
		r := harness.Run(cfg)
		tbl.AddRow(fmt.Sprintf("%.2f", th),
			harness.F2(r.AbortsPerOp),
			harness.F2(r.AbortBreakdown[htm.AbortConflictFalse]),
			harness.F2(r.AbortBreakdown[htm.AbortConflictMeta]),
			harness.F2(r.AbortBreakdown[htm.AbortConflictTrue]),
			harness.F2(r.AbortBreakdown[htm.AbortCapacity]),
			harness.F2(r.AbortBreakdown[htm.AbortFallbackLock]))
	}
	emit(&tbl)
}

var allTrees = []harness.TreeKind{
	harness.EunoBTree, harness.HTMBTree, harness.Masstree, harness.HTMMasstree,
}

// fig8 — Figure 8: throughput under different contention rates, all trees.
func fig8() {
	tbl := harness.Table{
		Title:  "Figure 8: throughput under different contention rates (" + fmt.Sprint(*threads) + " threads, ops/s)",
		Header: []string{"theta", "Euno-B+Tree", "HTM-B+Tree", "Masstree", "HTM-Masstree"},
	}
	ch := harness.Chart{Title: tbl.Title, XLabel: "theta", YLabel: "ops/s"}
	for range allTrees {
		ch.Series = append(ch.Series, harness.ChartSeries{})
	}
	for i, k := range allTrees {
		ch.Series[i].Name = k.String()
	}
	for _, th := range thetas() {
		row := []string{fmt.Sprintf("%.2f", th)}
		ch.X = append(ch.X, th)
		for i, k := range allTrees {
			cfg := baseCfg(k)
			cfg.Dist.Theta = th
			r := harness.Run(cfg)
			row = append(row, mops(r))
			ch.Series[i].Y = append(ch.Series[i].Y, r.Throughput)
		}
		tbl.AddRow(row...)
	}
	emit(&tbl)
	emitChart(&ch)
}

// fig9 — Figure 9: comparison of HTM aborts by reason, Euno vs baseline.
func fig9() {
	for _, k := range []harness.TreeKind{harness.HTMBTree, harness.EunoBTree} {
		tbl := harness.Table{
			Title: "Figure 9: " + k.String() + " aborts by reason (aborts per operation)",
			Header: []string{"theta", "total", "diff-record(false)", "shared-metadata",
				"same-record(true)", "fallback-lock"},
		}
		for _, th := range thetas() {
			cfg := baseCfg(k)
			cfg.Dist.Theta = th
			r := harness.Run(cfg)
			tbl.AddRow(fmt.Sprintf("%.2f", th),
				harness.F2(r.AbortsPerOp),
				harness.F2(r.AbortBreakdown[htm.AbortConflictFalse]),
				harness.F2(r.AbortBreakdown[htm.AbortConflictMeta]),
				harness.F2(r.AbortBreakdown[htm.AbortConflictTrue]),
				harness.F2(r.AbortBreakdown[htm.AbortFallbackLock]))
		}
		emit(&tbl)
	}
}

// scalePanel renders one thread-scalability panel.
func scalePanel(title string, mod func(*harness.Config)) {
	tbl := harness.Table{
		Title:  title,
		Header: []string{"threads", "Euno-B+Tree", "HTM-B+Tree", "Masstree", "HTM-Masstree"},
	}
	ch := harness.Chart{Title: title, XLabel: "threads", YLabel: "ops/s"}
	for _, k := range allTrees {
		ch.Series = append(ch.Series, harness.ChartSeries{Name: k.String()})
	}
	for _, n := range threadSweep() {
		row := []string{fmt.Sprint(n)}
		ch.X = append(ch.X, float64(n))
		for i, k := range allTrees {
			cfg := baseCfg(k)
			cfg.Threads = n
			mod(&cfg)
			r := harness.Run(cfg)
			row = append(row, mops(r))
			ch.Series[i].Y = append(ch.Series[i].Y, r.Throughput)
		}
		tbl.AddRow(row...)
	}
	emit(&tbl)
	emitChart(&ch)
}

// emitChart renders a chart when -chart is set.
func emitChart(c *harness.Chart) {
	if !*chart {
		return
	}
	if err := c.Fprint(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
	}
}

// fig10 — Figure 10: scalability under four contention levels.
func fig10() {
	panels := []struct {
		label string
		theta float64
	}{
		{"(a) Low Contention, theta=0.2", 0.2},
		{"(b) Modest Contention, theta=0.6", 0.6},
		{"(c) High Contention, theta=0.9", 0.9},
		{"(d) Extremely High Contention, theta=0.99", 0.99},
	}
	for _, p := range panels {
		th := p.theta
		scalePanel("Figure 10"+p.label+" (ops/s)", func(c *harness.Config) {
			c.Dist.Theta = th
		})
	}
}

// fig11 — Figure 11: get/put ratios under high contention (theta=0.9).
func fig11() {
	ratios := []struct {
		label string
		get   int
	}{
		{"(a) 0% get / 100% put", 0},
		{"(b) 20% get / 80% put", 20},
		{"(c) 50% get / 50% put", 50},
		{"(d) 70% get / 30% put", 70},
	}
	for _, rr := range ratios {
		get := rr.get
		scalePanel("Figure 11"+rr.label+", theta=0.9 (ops/s)", func(c *harness.Config) {
			c.Dist.Theta = 0.9
			c.Mix = workload.Mix{GetPct: get, PutPct: 100 - get}
		})
	}
}

// fig12 — Figure 12: different input distributions under high contention.
func fig12() {
	dists := []struct {
		label string
		spec  workload.Spec
	}{
		{"(a) Poisson Distribution", workload.Spec{Kind: workload.Poisson}},
		{"(b) Normal Distribution", workload.Spec{Kind: workload.Normal}},
		{"(c) Self-Similar Distribution", workload.Spec{Kind: workload.SelfSimilar}},
		{"(d) Zipfian Distribution, theta=0.9", workload.Spec{Kind: workload.Zipfian, Theta: 0.9}},
	}
	for _, d := range dists {
		spec := d.spec
		scalePanel("Figure 12"+d.label+" (ops/s)", func(c *harness.Config) {
			spec.N = c.Keys
			c.Dist = spec
		})
	}
}

// fig13 — Figure 13: impact of different design choices (cumulative
// ablation), relative to the monolithic baseline.
func fig13() {
	for _, p := range []struct {
		label string
		theta float64
	}{
		{"high contention (theta=0.9)", 0.9},
		{"low contention (theta=0.2)", 0.2},
	} {
		tbl := harness.Table{
			Title:  "Figure 13: impact of design choices, " + p.label + ", " + fmt.Sprint(*threads) + " threads",
			Header: []string{"configuration", "throughput(ops/s)", "relative", "aborts/op", "fallbacks"},
		}
		base := baseCfg(harness.HTMBTree)
		base.Dist.Theta = p.theta
		rb := harness.Run(base)
		tbl.AddRow("Baseline (HTM-B+Tree)", mops(rb), "1.00x", harness.F2(rb.AbortsPerOp), fmt.Sprint(rb.Stats.Fallbacks))
		for _, ab := range core.AblationConfigs() {
			cfg := baseCfg(harness.EunoBTree)
			cfg.Dist.Theta = p.theta
			ec := ab.Cfg
			cfg.EunoCfg = &ec
			r := harness.Run(cfg)
			tbl.AddRow(ab.Name, mops(r),
				fmt.Sprintf("%.2fx", r.Throughput/rb.Throughput),
				harness.F2(r.AbortsPerOp), fmt.Sprint(r.Stats.Fallbacks))
		}
		emit(&tbl)
	}
}

// mem — Section 5.7: memory consumption analysis.
func mem() {
	row := func(tbl *harness.Table, label string, mod func(*harness.Config)) {
		cfg := baseCfg(harness.EunoBTree)
		mod(&cfg)
		euno, base, pct := harness.MemoryComparison(cfg)
		tbl.AddRow(label,
			fmt.Sprintf("%.2f MB", float64(euno)/1e6),
			fmt.Sprintf("%.2f MB", float64(base)/1e6),
			fmt.Sprintf("%.2f%%", pct))
	}
	t1 := harness.Table{
		Title:  "Section 5.7 (1): memory overhead vs contention rate (Euno vs HTM-B+Tree)",
		Header: []string{"theta", "Euno-B+Tree", "HTM-B+Tree", "overhead"},
	}
	for _, th := range thetas() {
		th := th
		row(&t1, fmt.Sprintf("%.2f", th), func(c *harness.Config) { c.Dist.Theta = th })
	}
	emit(&t1)

	t2 := harness.Table{
		Title:  "Section 5.7 (2): memory overhead vs get/put ratio (theta=0.9)",
		Header: []string{"get/put", "Euno-B+Tree", "HTM-B+Tree", "overhead"},
	}
	for _, g := range []int{20, 50, 80} {
		g := g
		row(&t2, fmt.Sprintf("%d/%d", g, 100-g), func(c *harness.Config) {
			c.Mix = workload.Mix{GetPct: g, PutPct: 100 - g}
		})
	}
	emit(&t2)

	t3 := harness.Table{
		Title:  "Section 5.7 (3): memory overhead vs input distribution",
		Header: []string{"distribution", "Euno-B+Tree", "HTM-B+Tree", "overhead"},
	}
	for _, d := range []struct {
		label string
		kind  workload.Kind
	}{{"self-similar", workload.SelfSimilar}, {"poisson", workload.Poisson}, {"uniform", workload.Uniform}} {
		d := d
		row(&t3, d.label, func(c *harness.Config) {
			c.Dist = workload.Spec{Kind: d.kind, N: c.Keys}
		})
	}
	emit(&t3)
}
