package main

// The `hostperf` subcommand measures the host backend: the same trees and
// YCSB-style mixes as the figures, but executed on real goroutines at
// wall-clock speed (htm.BackendHost, no cost model). Where the figure
// subcommands reproduce the paper's *simulated* hardware, hostperf answers
// "how fast does the protocol actually run on this machine, and does it
// scale with real cores".
//
// Results go to a separate JSON artifact (-benchjson, conventionally
// BENCH_hostperf.json) with the same label-dedup behavior as hostbench.
// Numbers are machine-dependent by design: the artifact records
// GOMAXPROCS and NumCPU so a single-core CI runner's flat scaling curve
// is not mistaken for a protocol regression.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"eunomia/internal/harness"
	"eunomia/internal/metrics"
	"eunomia/internal/workload"
)

// hostperfResult is one (mix, threads) cell of the artifact.
type hostperfResult struct {
	Mix         string  `json:"mix"`
	Threads     int     `json:"threads"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	Speedup     float64 `json:"speedup_vs_1t"`
	P50Ns       uint64  `json:"p50_ns"`
	P99Ns       uint64  `json:"p99_ns"`
	P999Ns      uint64  `json:"p999_ns"`
	AbortsPerOp float64 `json:"aborts_per_op"`
	Fallbacks   uint64  `json:"fallbacks"`
}

// hostperfRun is one labeled invocation of the sweep.
type hostperfRun struct {
	Label      string           `json:"label"`
	Date       string           `json:"date"`
	GoVersion  string           `json:"go_version"`
	GoMaxProcs int              `json:"gomaxprocs"`
	NumCPU     int              `json:"num_cpu"`
	Tree       string           `json:"tree"`
	Keys       uint64           `json:"keys"`
	Theta      float64          `json:"theta"`
	DurationMS int64            `json:"duration_ms"`
	Results    []hostperfResult `json:"results"`
}

// hostperfFile is the artifact schema.
type hostperfFile struct {
	Suite string        `json:"suite"`
	Note  string        `json:"note"`
	Runs  []hostperfRun `json:"runs"`
}

// ycsbMixes are the three standard read/write ratios the sweep covers.
var ycsbMixes = []struct {
	name string
	mix  workload.Mix
}{
	{"YCSB-C 100r", workload.Mix{GetPct: 100}},
	{"YCSB-B 95r/5w", workload.Mix{GetPct: 95, PutPct: 5}},
	{"YCSB-A 50r/50w", workload.Mix{GetPct: 50, PutPct: 50}},
}

// hostperfCmd runs the host-backend thread sweep and prints/records it.
func hostperfCmd() {
	var hf *hostperfFile
	if *benchjson != "" {
		var err error
		if hf, err = loadHostperfFile(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
			os.Exit(1)
		}
	}
	dur := 750 * time.Millisecond
	if *quick {
		dur = 150 * time.Millisecond
	}
	const theta = 0.99
	run := hostperfRun{
		Label:      *benchlabel,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Tree:       harness.EunoBTree.String(),
		Keys:       *keys,
		Theta:      theta,
		DurationMS: dur.Milliseconds(),
	}
	tbl := harness.Table{
		Title: fmt.Sprintf("Host backend: Euno-B+Tree wall-clock throughput "+
			"(GOMAXPROCS=%d, NumCPU=%d, zipfian theta=%.2f, %v per point)",
			run.GoMaxProcs, run.NumCPU, theta, dur),
		Header: []string{"mix", "threads", "ops/s", "speedup-vs-1t",
			"p50(us)", "p99(us)", "p999(us)", "aborts/op", "fallbacks"},
	}
	for _, m := range ycsbMixes {
		var base float64
		for _, n := range hostThreadSweep() {
			res := harness.RunHost(harness.HostConfig{
				Tree:       harness.EunoBTree,
				Threads:    n,
				Keys:       *keys,
				PreloadPct: 100, // reads must hit: YCSB runs over a loaded table
				Dist:       workload.Spec{Kind: workload.Zipfian, Theta: theta},
				Mix:        m.mix,
				Duration:   dur,
				Seed:       *seed,
				Resilience: *resilience,
			})
			if n == 1 {
				base = res.Throughput
			}
			speedup := 0.0
			if base > 0 {
				speedup = res.Throughput / base
			}
			ls := res.Latency.Snapshot()
			hr := hostperfResult{
				Mix:         m.name,
				Threads:     n,
				OpsPerSec:   res.Throughput,
				Speedup:     speedup,
				P50Ns:       ls.P50,
				P99Ns:       ls.P99,
				P999Ns:      ls.P999,
				AbortsPerOp: res.AbortsPerOp,
				Fallbacks:   res.Stats.Fallbacks,
			}
			run.Results = append(run.Results, hr)
			tbl.AddRow(m.name, fmt.Sprint(n), metrics.FormatOps(res.Throughput),
				fmt.Sprintf("%.2fx", speedup),
				fmt.Sprintf("%.1f", float64(ls.P50)/1e3),
				fmt.Sprintf("%.1f", float64(ls.P99)/1e3),
				fmt.Sprintf("%.1f", float64(ls.P999)/1e3),
				harness.F2(res.AbortsPerOp), fmt.Sprint(res.Stats.Fallbacks))
		}
	}
	emit(&tbl)
	if hf == nil {
		return
	}
	if err := appendHostperfRun(*benchjson, hf, run); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (label %q)\n", *benchjson, run.Label)
}

// hostThreadSweep returns the goroutine counts hostperf measures, capped by
// -threads.
func hostThreadSweep() []int {
	var out []int
	for _, n := range []int{1, 2, 4, 8, 16} {
		if n <= *threads {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// loadHostperfFile parses the artifact at path, or returns a fresh one if
// the file does not exist yet.
func loadHostperfFile(path string) (*hostperfFile, error) {
	hf := &hostperfFile{
		Suite: "HostPerf",
		Note: "Wall-clock throughput of the host backend (real goroutines, " +
			"cost model off) across thread counts and YCSB mixes; regenerate " +
			"with `make bench-host` or `eunobench -benchjson " +
			"BENCH_hostperf.json -benchlabel <label> hostperf`. Numbers are " +
			"machine-dependent: check gomaxprocs/num_cpu before comparing " +
			"runs, and expect flat scaling on single-core runners.",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, hf); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return hf, nil
}

// appendHostperfRun merges run into the artifact, replacing any existing
// run with the same label.
func appendHostperfRun(path string, hf *hostperfFile, run hostperfRun) error {
	kept := hf.Runs[:0]
	for _, r := range hf.Runs {
		if r.Label != run.Label {
			kept = append(kept, r)
		}
	}
	hf.Runs = append(kept, run)
	data, err := json.MarshalIndent(hf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
