package main

import (
	"fmt"

	"eunomia/internal/harness"
	"eunomia/internal/metrics"
	"eunomia/internal/workload"
)

// Extension experiments beyond the paper's figures. Registered in main.go:
//
//	scan    — quantifies Section 4.1's stated trade-off ("such a design
//	          sacrifices the performance of scan operations"): range-query
//	          throughput across scan lengths, Euno vs baseline vs Masstree.
//	latency — per-operation latency percentiles under low and high
//	          contention (the paper reports only throughput; tail latency
//	          is where fallback convoys hurt most).

// scanCost measures mixed point/scan workloads across scan lengths.
func scanCost() {
	tbl := harness.Table{
		Title:  "Extension: range-query cost (10% scans of length L, theta=0.6, ops/s)",
		Header: []string{"scan-len", "Euno-B+Tree", "HTM-B+Tree", "Masstree"},
	}
	for _, l := range []int{4, 16, 64, 256} {
		row := []string{fmt.Sprint(l)}
		for _, k := range []harness.TreeKind{harness.EunoBTree, harness.HTMBTree, harness.Masstree} {
			cfg := baseCfg(k)
			cfg.Dist.Theta = 0.6
			cfg.Mix = workload.Mix{GetPct: 45, PutPct: 45, ScanPct: 10, ScanLen: l}
			row = append(row, mops(harness.Run(cfg)))
		}
		tbl.AddRow(row...)
	}
	emit(&tbl)
}

// latency reports per-op latency percentiles (virtual cycles).
func latency() {
	for _, p := range []struct {
		label string
		theta float64
	}{{"low contention (theta=0.2)", 0.2}, {"high contention (theta=0.9)", 0.9}} {
		tbl := harness.Table{
			Title:  "Extension: operation latency in cycles, " + p.label,
			Header: []string{"tree", "mean", "p50", "p99", "max", "throughput"},
		}
		for _, k := range allTrees {
			cfg := baseCfg(k)
			cfg.Dist.Theta = p.theta
			r := harness.Run(cfg)
			tbl.AddRow(k.String(),
				fmt.Sprintf("%.0f", r.Latency.Mean()),
				fmt.Sprint(r.Latency.Quantile(0.5)),
				fmt.Sprint(r.Latency.Quantile(0.99)),
				fmt.Sprint(r.Latency.Max()),
				metrics.FormatOps(r.Throughput))
		}
		emit(&tbl)
	}
}

// adjacency separates the paper's two contention ingredients: skew (how
// concentrated the popularity distribution is) and adjacency (whether the
// hot keys are neighbors sharing cache lines). Plain Zipfian has both;
// scrambled Zipfian keeps the skew but scatters the hot keys. The
// baseline's consecutive layout should suffer far more under the plain
// variant — direct evidence for the paper's "cache line sharing of
// consecutive records" mechanism.
func adjacency() {
	tbl := harness.Table{
		Title:  "Extension: skew vs adjacency (theta=0.9, " + fmt.Sprint(*threads) + " threads, ops/s)",
		Header: []string{"tree", "plain zipfian", "aborts/op", "scrambled zipfian", "aborts/op"},
	}
	for _, k := range []harness.TreeKind{harness.HTMBTree, harness.EunoBTree} {
		plain := baseCfg(k)
		plain.Dist = workload.Spec{Kind: workload.Zipfian, Theta: 0.9}
		rp := harness.Run(plain)
		scr := baseCfg(k)
		scr.Dist = workload.Spec{Kind: workload.ScrambledZipfian, Theta: 0.9}
		rs := harness.Run(scr)
		tbl.AddRow(k.String(), mops(rp), harness.F2(rp.AbortsPerOp), mops(rs), harness.F2(rs.AbortsPerOp))
	}
	emit(&tbl)
}

// validateCmd runs a mixed workload on each tree and checks the final
// structure with the quiescent validators — a self-test for users who
// change tree internals.
func validateCmd() {
	tbl := harness.Table{
		Title:  "Structural validation after a mixed workload (theta=0.9, deletes included)",
		Header: []string{"tree", "ops", "result"},
	}
	for _, k := range []harness.TreeKind{harness.EunoBTree, harness.HTMBTree, harness.Masstree, harness.HTMMasstree} {
		cfg := baseCfg(k)
		cfg.Mix = workload.Mix{GetPct: 30, PutPct: 50, DeletePct: 15, ScanPct: 5, ScanLen: 10}
		res, err := harness.RunAndValidate(cfg)
		verdict := "OK"
		if err != nil {
			verdict = err.Error()
		}
		tbl.AddRow(k.String(), fmt.Sprint(res.Ops), verdict)
	}
	emit(&tbl)
}
