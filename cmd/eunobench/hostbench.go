package main

// Host-speed measurement layer: the `hostbench` subcommand runs the
// emulator micro-benchmarks from internal/htm/hostbench through
// testing.Benchmark and records the results in a JSON artifact, and the
// -cpuprofile/-memprofile flags wrap any subcommand (figures included) in
// pprof capture so emulator hot spots can be inspected with
// `go tool pprof`.
//
// The JSON artifact (-benchjson, conventionally BENCH_emulator.json at the
// repo root) accumulates labeled runs: re-running with a new -benchlabel
// appends a run (replacing any previous run with the same label), so
// before/after speedups of emulator changes stay comparable across PRs.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	"eunomia/internal/harness"
	"eunomia/internal/htm/hostbench"
)

var (
	cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
	memprofile = flag.String("memprofile", "", "write a pprof heap profile at exit to `file`")
	benchjson  = flag.String("benchjson", "", "hostbench: append results to the JSON artifact at `file`")
	benchlabel = flag.String("benchlabel", "current", "hostbench: run label recorded in the JSON artifact")
)

// benchResult is one benchmark's outcome in the JSON artifact.
type benchResult struct {
	Name        string  `json:"name"`
	Iters       int     `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// benchRun is one labeled invocation of the suite.
type benchRun struct {
	Label     string        `json:"label"`
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	Results   []benchResult `json:"results"`
}

// benchFile is the artifact schema.
type benchFile struct {
	Suite string     `json:"suite"`
	Note  string     `json:"note"`
	Runs  []benchRun `json:"runs"`
}

// hostbenchCmd runs the HostEmulator suite and prints/records results.
func hostbenchCmd() {
	// Parse the artifact up front so a corrupt file fails before the
	// minute-long benchmark run, not after.
	var bf *benchFile
	if *benchjson != "" {
		var err error
		if bf, err = loadBenchFile(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
			os.Exit(1)
		}
	}
	run := benchRun{
		Label:     *benchlabel,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
	}
	tbl := harness.Table{
		Title:  "HostEmulator micro-benchmarks (host ns/op, not virtual time)",
		Header: []string{"case", "iters", "ns/op", "B/op", "allocs/op"},
	}
	for _, c := range hostbench.Cases() {
		r := testing.Benchmark(c.Bench)
		br := benchResult{
			Name:        c.Name,
			Iters:       r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		run.Results = append(run.Results, br)
		tbl.AddRow(c.Name, fmt.Sprint(br.Iters), fmt.Sprintf("%.0f", br.NsPerOp),
			fmt.Sprint(br.BytesPerOp), fmt.Sprint(br.AllocsPerOp))
	}
	emit(&tbl)
	if bf == nil {
		return
	}
	if err := appendBenchRun(*benchjson, bf, run); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (label %q)\n", *benchjson, run.Label)
}

// loadBenchFile parses the artifact at path, or returns a fresh one if the
// file does not exist yet.
func loadBenchFile(path string) (*benchFile, error) {
	bf := &benchFile{
		Suite: "HostEmulator",
		Note: "Host-speed (wall clock) micro-benchmarks of the HTM emulator's " +
			"Load/Store/commit paths; regenerate with `eunobench -benchjson " +
			"BENCH_emulator.json -benchlabel <label> hostbench`. Virtual-time " +
			"figure metrics are tracked separately in EXPERIMENTS.md.",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, bf); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return bf, nil
}

// appendBenchRun merges run into the artifact, replacing any existing run
// with the same label so re-measurements stay deduplicated.
func appendBenchRun(path string, bf *benchFile, run benchRun) error {
	kept := bf.Runs[:0]
	for _, r := range bf.Runs {
		if r.Label != run.Label {
			kept = append(kept, r)
		}
	}
	bf.Runs = append(kept, run)
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// startCPUProfile begins CPU profiling if -cpuprofile is set; the returned
// func stops it.
func startCPUProfile() func() {
	if *cpuprofile == "" {
		return func() {}
	}
	f, err := os.Create(*cpuprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMemProfile dumps a heap profile if -memprofile is set.
func writeMemProfile() {
	if *memprofile == "" {
		return
	}
	f, err := os.Create(*memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
}
