package main

import (
	"fmt"

	"eunomia/internal/harness"
	"eunomia/internal/htm"
	"eunomia/internal/metrics"
	"eunomia/internal/simmem"
	"eunomia/internal/vclock"
)

// stormCmd — Extension: the "lock hog + abort storm" robustness scenario.
//
// One thread hogs the global fallback lock with long non-transactional
// critical sections (a stand-in for a GC pause, page fault, or oversized
// fallback body) while the remaining threads hammer a handful of shared
// cache lines. Under the paper-faithful fragile policy this is the worst
// case the baseline collapses on: every attempt that begins while the lock
// is held burns a real abort (lemming effect), conflict retries fire
// immediately with no backoff, and the spin-CAS lock hands the device back
// to whoever's CAS lands first. With the resilience layer on, the same
// schedule runs with randomized exponential backoff, lemming-wait, a fair
// ticket fallback lock, the abort-storm detector's graceful degradation,
// and the per-operation watchdog bounding every Execute's attempts.
//
// The table reports victim-side throughput, latency percentiles, the
// largest attempt count any single Execute needed (the starvation metric:
// with resilience on it must stay within the watchdog budget), the number
// of executions that exceeded that budget, and the wasted-cycle fraction.
func stormCmd() {
	budget := htm.DefaultResilience().AttemptBudget
	tbl := harness.Table{
		Title: fmt.Sprintf("Extension: lock hog + abort storm (%d victims + 1 hog; starvation budget = %d attempts)",
			stormVictims, budget),
		Header: []string{"config", "ops/s(victims)", "p50(cyc)", "p99(cyc)", "max(cyc)",
			"max-attempts", "over-budget", "wasted%", "fallbacks", "watchdog", "degraded", "storms", "backoff-cyc", "recovered"},
	}
	for _, resilient := range []bool{false, true} {
		name := "fragile (paper default)"
		if resilient {
			name = "resilient"
		}
		r := runStorm(resilient)
		tbl.AddRow(name,
			metrics.FormatOps(r.throughput),
			fmt.Sprint(r.lat.Quantile(0.5)),
			fmt.Sprint(r.lat.Quantile(0.99)),
			fmt.Sprint(r.lat.Max()),
			fmt.Sprint(r.maxAttempts),
			fmt.Sprint(r.overBudget),
			harness.F1(r.wastedPct),
			fmt.Sprint(r.stats.Fallbacks),
			fmt.Sprint(r.stats.WatchdogTrips),
			fmt.Sprint(r.stats.DegradationEvents),
			fmt.Sprint(r.stormEvents),
			fmt.Sprint(r.stats.BackoffCycles),
			r.recovered)
	}
	emit(&tbl)
}

const (
	stormVictims   = 15
	stormHogHolds  = 60
	stormHoldCost  = 30_000 // cycles the hog keeps the fallback lock per hold
	stormHotOps    = 400    // contended ops per victim while the storm rages
	stormCalmOps   = 200    // per-victim cool-down ops on private lines
	stormHotLines  = 4      // shared lines every hot op touches
	stormArenaSize = 1 << 18
)

type stormResult struct {
	throughput  float64
	lat         metrics.Histogram
	maxAttempts uint64
	overBudget  uint64 // Executes needing more attempts than the watchdog budget
	wastedPct   float64
	stats       htm.Stats
	stormEvents uint64
	recovered   string
}

// runStorm plays the deterministic virtual-time scenario once.
func runStorm(resilient bool) stormResult {
	arena := simmem.NewArena(stormArenaSize)
	hcfg := htm.DefaultConfig
	pol := htm.DefaultPolicy
	if resilient {
		r := htm.DefaultResilience()
		hcfg = r.DeviceConfig(hcfg)
		pol = r.Apply(pol)
	}
	name := "storm fragile"
	if resilient {
		name = "storm resilient"
	}
	hcfg.Observer = traceLane(name)
	h := htm.New(arena, hcfg)
	boot := vclock.NewWallProc(0, 0)
	hot := arena.AllocAligned(boot, stormHotLines*simmem.WordsPerLine, simmem.TagKeys)
	private := arena.AllocAligned(boot, (stormVictims+1)*simmem.WordsPerLine, simmem.TagKeys)
	budget := uint64(htm.DefaultResilience().AttemptBudget)

	threads := stormVictims + 1
	sim := vclock.NewSim(threads, 0)
	stats := make([]htm.Stats, threads)
	hists := make([]metrics.Histogram, threads)
	maxAtt := make([]uint64, threads)
	over := make([]uint64, threads)
	var victimOps uint64
	sim.Run(func(p *vclock.SimProc) {
		th := h.NewThread(p, uint64(p.ID())*7919+13)
		if p.ID() == 0 {
			// The hog: repeatedly seize the fallback lock and sit on it.
			for i := 0; i < stormHogHolds; i++ {
				th.RunFallback(func(tx *htm.Tx) {
					tx.Store(hot, tx.Load(hot)+1)
					tx.Proc().Tick(stormHoldCost)
				})
			}
		} else {
			id := p.ID()
			mine := private + simmem.Addr(id*simmem.WordsPerLine)
			for i := 0; i < stormHotOps+stormCalmOps; i++ {
				calm := i >= stormHotOps
				before := th.Stats.Attempts
				start := p.Now()
				th.Execute(pol, func(tx *htm.Tx) {
					if calm {
						// Cool-down phase: private lines, no conflicts —
						// the storm detector must disengage on this diet.
						tx.Store(mine, tx.Load(mine)+1)
						return
					}
					for l := 0; l < stormHotLines; l++ {
						addr := hot + simmem.Addr(l*simmem.WordsPerLine)
						tx.Store(addr, tx.Load(addr)+1)
					}
				})
				hists[id].Observe(p.Now() - start)
				att := th.Stats.Attempts - before
				if att > maxAtt[id] {
					maxAtt[id] = att
				}
				if att > budget {
					over[id]++
				}
			}
		}
		stats[p.ID()] = th.Stats
	})

	res := stormResult{stormEvents: h.StormEvents()}
	var totalCycles uint64
	for _, p := range sim.Procs() {
		totalCycles += p.Now()
	}
	for i := range stats {
		res.stats.Merge(&stats[i])
		if i > 0 {
			res.lat.Merge(&hists[i])
			if maxAtt[i] > res.maxAttempts {
				res.maxAttempts = maxAtt[i]
			}
			res.overBudget += over[i]
		}
	}
	victimOps = uint64(stormVictims * (stormHotOps + stormCalmOps))
	seconds := float64(sim.MaxClock()) / vclock.CyclesPerSecond
	if seconds > 0 {
		res.throughput = float64(victimOps) / seconds
	}
	if totalCycles > 0 {
		res.wastedPct = 100 * float64(res.stats.WastedCycles) / float64(totalCycles)
	}
	switch {
	case !resilient:
		res.recovered = "n/a"
	case h.Degraded():
		res.recovered = "NO"
	default:
		res.recovered = "yes"
	}
	return res
}
