package main

// The `hotkey` subcommand measures the CCM v2 hot-key layer (elimination +
// flat combining, Options.Combine) under the two workloads it exists for:
// a single-key hammer (every operation targets one record) and a
// celebrity-key Zipfian at the paper's extreme-skew point theta=0.99. Each
// scenario runs with combining off (the paper-faithful CCM baseline) and
// on, at the same thread counts, so the table and the BENCH_hotkey.json
// artifact directly show the on/off throughput and aborts-per-op ratios.
//
// Like the figure suite (and unlike hostperf), hotkey runs on the emulated
// backend: contention is modeled per the paper's cost model on virtual
// cores, so the comparison is deterministic and works on a single-core CI
// runner — which could never produce real 16-thread cache-line contention.
// Results go to -benchjson (conventionally BENCH_hotkey.json) with the
// same label-dedup behavior as hostbench/hostperf.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"eunomia/internal/core"
	"eunomia/internal/harness"
	"eunomia/internal/metrics"
	"eunomia/internal/workload"
)

// hotkeyResult is one (scenario, combine, threads) cell of the artifact.
type hotkeyResult struct {
	Scenario         string  `json:"scenario"`
	Combine          bool    `json:"combine"`
	Threads          int     `json:"threads"`
	OpsPerSec        float64 `json:"ops_per_sec"` // virtual seconds, 2.3 GHz clock
	AbortsPerOp      float64 `json:"aborts_per_op"`
	WastedPct        float64 `json:"wasted_pct"`
	P50Cycles        uint64  `json:"p50_cycles"`
	P99Cycles        uint64  `json:"p99_cycles"`
	Fallbacks        uint64  `json:"fallbacks"`
	CombinedBatches  uint64  `json:"combined_batches"`
	CombinedOps      uint64  `json:"combined_ops"`
	EliminatedPairs  uint64  `json:"eliminated_pairs"`
	CombinerHandoffs uint64  `json:"combiner_handoffs"`
	// SpeedupVsOff and AbortRatioVsOff compare this combine=true cell to
	// the combine=false cell at the same (scenario, threads); zero on
	// combine=false cells. AbortRatioVsOff > 1 means fewer aborts per op
	// with combining on.
	SpeedupVsOff    float64 `json:"speedup_vs_off,omitempty"`
	AbortRatioVsOff float64 `json:"abort_ratio_vs_off,omitempty"`
}

// hotkeyRun is one labeled invocation of the sweep.
type hotkeyRun struct {
	Label     string         `json:"label"`
	Date      string         `json:"date"`
	GoVersion string         `json:"go_version"`
	Keys      uint64         `json:"keys"`
	Ops       int            `json:"ops_per_thread"`
	Results   []hotkeyResult `json:"results"`
}

// hotkeyFile is the artifact schema.
type hotkeyFile struct {
	Suite string      `json:"suite"`
	Note  string      `json:"note"`
	Runs  []hotkeyRun `json:"runs"`
}

// hotkeyScenario is one contention shape of the sweep.
type hotkeyScenario struct {
	name string
	dist workload.Spec
	mix  workload.Mix
}

// hotkeyScenarios are the two shapes the layer targets. Both mixes carry
// deletes so the elimination path (same-key insert+delete pairs) is
// reachable, not just flat combining.
func hotkeyScenarios(keys uint64) []hotkeyScenario {
	return []hotkeyScenario{
		{
			name: "single-key hammer",
			dist: workload.Spec{Kind: workload.Uniform, N: 1},
			mix:  workload.Mix{GetPct: 20, PutPct: 40, DeletePct: 40},
		},
		{
			name: "celebrity zipf 0.99",
			dist: workload.Spec{Kind: workload.Zipfian, N: keys, Theta: 0.99},
			mix:  workload.Mix{GetPct: 50, PutPct: 30, DeletePct: 20},
		},
	}
}

// hotkeyThreads returns the virtual-core counts measured, capped by
// -threads.
func hotkeyThreads() []int {
	full := []int{4, 8, 16, 20}
	if *quick {
		full = []int{8, 16}
	}
	var out []int
	for _, n := range full {
		if n <= *threads {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{*threads}
	}
	return out
}

// hotkeyCmd runs the combine on/off comparison and prints/records it.
func hotkeyCmd() {
	var hf *hotkeyFile
	if *benchjson != "" {
		var err error
		if hf, err = loadHotkeyFile(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
			os.Exit(1)
		}
	}
	run := hotkeyRun{
		Label:     *benchlabel,
		Date:      time.Now().UTC().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		Keys:      *keys,
		Ops:       *ops,
	}
	tbl := harness.Table{
		Title: "Hot-key elimination & flat combining (CCM v2): emulated backend, " +
			fmt.Sprint(*ops) + " ops/thread",
		Header: []string{"scenario", "combine", "threads", "ops/s", "vs-off",
			"aborts/op", "abort-ratio", "batches", "batch-ops", "eliminated"},
	}
	for _, sc := range hotkeyScenarios(*keys) {
		for _, n := range hotkeyThreads() {
			var off hotkeyResult
			for _, combine := range []bool{false, true} {
				cfg := core.DefaultConfig
				cfg.Combine.Enabled = combine
				res := harness.Run(harness.Config{
					Tree:         harness.EunoBTree,
					EunoCfg:      &cfg,
					Threads:      n,
					Keys:         *keys,
					PreloadPct:   100,
					Dist:         sc.dist,
					Mix:          sc.mix,
					OpsPerThread: *ops,
					Seed:         *seed,
					Resilience:   *resilience,
				})
				ls := res.Latency.Snapshot()
				hr := hotkeyResult{
					Scenario:         sc.name,
					Combine:          combine,
					Threads:          n,
					OpsPerSec:        res.Throughput,
					AbortsPerOp:      res.AbortsPerOp,
					WastedPct:        res.WastedPct,
					P50Cycles:        ls.P50,
					P99Cycles:        ls.P99,
					Fallbacks:        res.Stats.Fallbacks,
					CombinedBatches:  res.CombinedBatches,
					CombinedOps:      res.CombinedOps,
					EliminatedPairs:  res.EliminatedPairs,
					CombinerHandoffs: res.CombinerHandoffs,
				}
				vsOff, abortRatio := "-", "-"
				if combine {
					if off.OpsPerSec > 0 {
						hr.SpeedupVsOff = hr.OpsPerSec / off.OpsPerSec
						vsOff = fmt.Sprintf("%.2fx", hr.SpeedupVsOff)
					}
					if hr.AbortsPerOp > 0 {
						hr.AbortRatioVsOff = off.AbortsPerOp / hr.AbortsPerOp
						abortRatio = fmt.Sprintf("%.2fx", hr.AbortRatioVsOff)
					}
				} else {
					off = hr
				}
				run.Results = append(run.Results, hr)
				tbl.AddRow(sc.name, onOff(combine), fmt.Sprint(n),
					metrics.FormatOps(res.Throughput), vsOff,
					harness.F2(res.AbortsPerOp), abortRatio,
					fmt.Sprint(res.CombinedBatches), fmt.Sprint(res.CombinedOps),
					fmt.Sprint(res.EliminatedPairs))
			}
		}
	}
	emit(&tbl)
	if hf == nil {
		return
	}
	if err := appendHotkeyRun(*benchjson, hf, run); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (label %q)\n", *benchjson, run.Label)
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// loadHotkeyFile parses the artifact at path, or returns a fresh one if
// the file does not exist yet.
func loadHotkeyFile(path string) (*hotkeyFile, error) {
	hf := &hotkeyFile{
		Suite: "HotKey",
		Note: "CCM v2 (Options.Combine) on/off comparison on the emulated " +
			"backend under a single-key hammer and a theta=0.99 celebrity-key " +
			"Zipfian; regenerate with `make bench-hotkey` or `eunobench " +
			"-benchjson BENCH_hotkey.json -benchlabel <label> hotkey`. " +
			"Numbers are virtual-time (deterministic for a given seed and " +
			"geometry), so runs are comparable across machines.",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, hf); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return hf, nil
}

// appendHotkeyRun merges run into the artifact, replacing any existing run
// with the same label.
func appendHotkeyRun(path string, hf *hotkeyFile, run hotkeyRun) error {
	kept := hf.Runs[:0]
	for _, r := range hf.Runs {
		if r.Label != run.Label {
			kept = append(kept, r)
		}
	}
	hf.Runs = append(kept, run)
	data, err := json.MarshalIndent(hf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
