package main

// The `reshardchaos` subcommand measures serving behavior through a live
// topology change: an open-loop Poisson load with a deliberately hot
// range-partitioned shard, a mid-run Reshard that doubles the shard
// count, and a per-bucket goodput + p99 timeline through bulk copy,
// fenced cutovers, and purge. Two numbers are the contract (and the
// reason to reshard at all): goodput during the migration should hold
// >= ~90% of the pre-migration baseline (the copy runs behind the
// serving path; only the fenced final drains stall writers, briefly and
// per-interval), and post-split p99 should improve on the baseline (the
// hot shard's interval now spans two shards, halving its queueing).
//
// Results append to a JSON artifact (-benchjson, conventionally
// BENCH_reshard.json) with the same label-dedup behavior as the other
// artifacts. Numbers are machine-dependent; the two ratios are the
// shape under study.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"eunomia"
	"eunomia/internal/durable"
	"eunomia/internal/harness"
	"eunomia/internal/metrics"
	"eunomia/internal/vclock"
	"eunomia/internal/workload"
)

var reshardDur = flag.Duration("resharddur", 0,
	"reshardchaos: run duration (0 = 4s, 1500ms with -quick)")

const (
	reshardShards = 4 // serving topology before the split
	reshardTarget = 8 // topology after: the hot interval spans two shards
	// reshardTickBucket is the timeline resolution.
	reshardTickBucket = 100 * time.Millisecond
	// reshardHotPct of arrivals target the hottest shard's interval.
	reshardHotPct = 80
)

// reshardResult is the scenario's record in the artifact.
type reshardResult struct {
	OfferedOps  float64 `json:"offered_ops_per_sec"`
	CapacityOps float64 `json:"capacity_ops_per_sec"`
	Arrivals    uint64  `json:"arrivals"`
	Completed   uint64  `json:"completed"`
	Errors      uint64  `json:"errors"`
	Dropped     uint64  `json:"dropped"`

	ShardsBefore int   `json:"shards_before"`
	ShardsAfter  int   `json:"shards_after"`
	ReshardMS    int64 `json:"reshard_ms"` // wall time of the Reshard call
	ReshardOK    bool  `json:"reshard_ok"`
	ReadbackOK   bool  `json:"readback_ok"`

	// Windowed metrics: baseline (pre-trigger), migration (trigger →
	// completion), post (completion → end).
	BaselineGoodput      float64 `json:"baseline_goodput_ops_per_sec"`
	MigrationGoodput     float64 `json:"migration_goodput_ops_per_sec"`
	PostGoodput          float64 `json:"post_goodput_ops_per_sec"`
	MigrationGoodputRatio float64 `json:"migration_goodput_ratio"` // target >= 0.9
	BaselineP99Ns        uint64  `json:"baseline_p99_ns"`
	MigrationP99Ns       uint64  `json:"migration_p99_ns"`
	PostP99Ns            uint64  `json:"post_p99_ns"`
	PostP99Ratio         float64 `json:"post_p99_ratio"` // post/baseline, target < 1

	// Routing-layer counters from ClusterMetrics.Topology at run end.
	RoutingEpochBumps uint64 `json:"routing_epoch_bumps"`
	RoutingGen        uint64 `json:"routing_gen"`
	MovesDone         uint64 `json:"moves_done"`
	RedirectedOps     uint64 `json:"redirected_ops"`

	TriggerBucket    int      `json:"trigger_bucket"`
	DoneBucket       int      `json:"done_bucket"`
	TimelineBucketMS int64    `json:"timeline_bucket_ms"`
	TimelineOK       []uint64 `json:"timeline_ok"`     // completed-OK per bucket
	TimelineP99Us    []uint64 `json:"timeline_p99_us"` // sojourn p99 per bucket
}

// reshardRun is one labeled invocation.
type reshardRun struct {
	Label      string          `json:"label"`
	Date       string          `json:"date"`
	GoVersion  string          `json:"go_version"`
	GoMaxProcs int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Keys       uint64          `json:"keys"`
	DurationMS int64           `json:"duration_ms"`
	Results    []reshardResult `json:"results"`
}

// reshardBenchFile is the artifact schema.
type reshardBenchFile struct {
	Suite string       `json:"suite"`
	Note  string       `json:"note"`
	Runs  []reshardRun `json:"runs"`
}

// reshardSpread maps a logical key in [1, keys] onto the full uint64 key
// line, so Range partitioning cuts the logical space into real intervals.
func reshardSpread(keys, k uint64) uint64 {
	return k * (^uint64(0) / keys)
}

// openReshardCluster builds the durable range-partitioned cluster on
// per-shard in-memory disks, host backend, preloaded across the spread
// key line so the migration has real data to move.
func openReshardCluster(keys uint64) (*eunomia.Cluster, error) {
	fses := make([]*durable.MemFS, reshardTarget)
	for i := range fses {
		fses[i] = durable.NewMemFS(durable.FaultPlan{})
	}
	c, err := eunomia.OpenCluster(eunomia.ClusterOptions{
		Shards:    reshardShards,
		Partition: eunomia.RangePartition,
		Shard: eunomia.Options{
			ArenaWords: 1 << 21,
			Backend:    eunomia.Host,
			YieldEvery: 128,
			Durability: eunomia.Durability{Dir: "reshard", FS: durable.NewMemFS(durable.FaultPlan{})},
		},
		PerShard: func(i int, o *eunomia.Options) { o.Durability.FS = fses[i] },
		Health:   eunomia.HealthOptions{Window: 16, TripFailures: 4},
	})
	if err != nil {
		return nil, err
	}
	sess := c.NewSession()
	defer sess.Close()
	for k := uint64(1); k <= keys; k++ {
		if err := sess.Put(reshardSpread(keys, k), k*7+1); err != nil {
			c.Close()
			return nil, fmt.Errorf("preload key %d: %w", k, err)
		}
	}
	return c, nil
}

// reshardNextKey draws one logical key with the hot-shard skew: most
// arrivals land in the hottest shard's quarter of the logical space.
func reshardNextKey(rng *vclock.Rand, keys uint64) uint64 {
	if rng.Uint64()%100 < reshardHotPct {
		return rng.Uint64()%(keys/reshardShards) + 1
	}
	return rng.Uint64()%keys + 1
}

// reshardCalibrate measures closed-loop capacity under the skewed load.
func reshardCalibrate(c *eunomia.Cluster, keys uint64) float64 {
	const window = 150 * time.Millisecond
	nw := swarmWorkers()
	var total atomic.Uint64
	var wg sync.WaitGroup
	stop := time.Now().Add(window)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession()
			defer sess.Close()
			rng := vclock.NewRand(*seed + 2000 + uint64(w))
			n := uint64(0)
			for time.Now().Before(stop) {
				k := reshardSpread(keys, reshardNextKey(rng, keys))
				var err error
				if rng.Uint64()%100 < 80 {
					_, _, err = sess.Get(k)
				} else {
					err = sess.Put(k, rng.Uint64()|1)
				}
				if err == nil {
					n++
				}
			}
			total.Add(n)
		}(w)
	}
	wg.Wait()
	return float64(total.Load()) / window.Seconds()
}

// reshardChaosCmd runs the scenario and records it.
func reshardChaosCmd() {
	var rf *reshardBenchFile
	if *benchjson != "" {
		var err error
		if rf, err = loadReshardFile(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
			os.Exit(1)
		}
	}
	dur := *reshardDur
	if dur == 0 {
		dur = 4 * time.Second
		if *quick {
			dur = 1500 * time.Millisecond
		}
	}
	keys := *keys
	if *quick && keys > 20_000 {
		keys = 20_000
	}

	c, err := openReshardCluster(keys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()

	capacity := reshardCalibrate(c, keys)
	offered := *swarmRate
	if offered <= 0 {
		offered = 0.70 * capacity
	}

	res := runReshardChaos(c, keys, dur, offered)
	res.CapacityOps = capacity

	tbl := harness.Table{
		Title: fmt.Sprintf("reshardchaos: open-loop load with a hot shard through a live %d->%d reshard "+
			"(GOMAXPROCS=%d, NumCPU=%d, %d workers, %v)",
			reshardShards, reshardTarget, runtime.GOMAXPROCS(0), runtime.NumCPU(), swarmWorkers(), dur),
		Header: []string{"window", "goodput(ops/s)", "p99(us)"},
	}
	tbl.AddRow("baseline", metrics.FormatOps(res.BaselineGoodput), fmt.Sprintf("%.1f", float64(res.BaselineP99Ns)/1e3))
	tbl.AddRow("migration", metrics.FormatOps(res.MigrationGoodput), fmt.Sprintf("%.1f", float64(res.MigrationP99Ns)/1e3))
	tbl.AddRow("post-split", metrics.FormatOps(res.PostGoodput), fmt.Sprintf("%.1f", float64(res.PostP99Ns)/1e3))
	emit(&tbl)
	fmt.Printf("reshard: %d->%d in %dms at bucket %d..%d (ok=%v readback=%v); "+
		"migration goodput %.1f%% of baseline (target >=90%%); post-split p99 %.2fx baseline (target <1); "+
		"epoch=%d gen=%d moves=%d redirects=%d\n",
		res.ShardsBefore, res.ShardsAfter, res.ReshardMS, res.TriggerBucket, res.DoneBucket,
		res.ReshardOK, res.ReadbackOK,
		100*res.MigrationGoodputRatio, res.PostP99Ratio,
		res.RoutingEpochBumps, res.RoutingGen, res.MovesDone, res.RedirectedOps)
	ch := harness.Chart{
		Title:  "reshardchaos: goodput per 100ms bucket through the live split",
		XLabel: "t(s)", YLabel: "ops/bucket",
		Series: []harness.ChartSeries{{Name: "completed ok"}},
	}
	for i := range res.TimelineOK {
		ch.X = append(ch.X, float64(i)*reshardTickBucket.Seconds())
		ch.Series[0].Y = append(ch.Series[0].Y, float64(res.TimelineOK[i]))
	}
	emitChart(&ch)

	if rf == nil {
		return
	}
	run := reshardRun{
		Label:      *benchlabel + "-reshardchaos",
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Keys:       keys,
		DurationMS: dur.Milliseconds(),
		Results:    []reshardResult{res},
	}
	if err := appendReshardRun(*benchjson, rf, run); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (label %q)\n", *benchjson, run.Label)
}

// runReshardChaos drives the open-loop phase with the mid-run split.
func runReshardChaos(c *eunomia.Cluster, keys uint64, dur time.Duration, offered float64) reshardResult {
	nb := int(dur/reshardTickBucket) + 2
	okBucket := make([]uint64, nb)
	var completed, errs atomic.Uint64

	queue := make(chan swarmArrival, *swarmQueue)
	start := time.Now()
	bucketOf := func(t time.Time) int {
		b := int(t.Sub(start) / reshardTickBucket)
		if b < 0 {
			b = 0
		}
		if b >= nb {
			b = nb - 1
		}
		return b
	}

	// Executor pool with per-worker per-bucket histograms (Histogram is
	// not goroutine-safe; merge at the end).
	nw := swarmWorkers()
	hists := make([][]*metrics.Histogram, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		hists[w] = make([]*metrics.Histogram, nb)
		for b := range hists[w] {
			hists[w][b] = &metrics.Histogram{}
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession()
			defer sess.Close()
			for a := range queue {
				err := swarmExec(sess, a.op)
				now := time.Now()
				hists[w][bucketOf(now)].Observe(uint64(now.Sub(a.t0)))
				if err != nil {
					errs.Add(1)
					continue
				}
				completed.Add(1)
				atomic.AddUint64(&okBucket[bucketOf(now)], 1)
			}
		}(w)
	}

	// The split fires at 30% of the run and blocks until the migration
	// completes (bulk copy, catch-up, fenced cutovers, purge).
	var trigBucket, doneBucket atomic.Int64
	trigBucket.Store(-1)
	doneBucket.Store(-1)
	var reshardMS atomic.Int64
	var reshardOK atomic.Bool
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		time.Sleep(dur * 30 / 100)
		trigBucket.Store(int64(bucketOf(time.Now())))
		t0 := time.Now()
		err := c.Reshard(reshardTarget)
		reshardMS.Store(time.Since(t0).Milliseconds())
		doneBucket.Store(int64(bucketOf(time.Now())))
		reshardOK.Store(err == nil)
	}()

	// Open-loop generator, same 1ms Poisson slots as swarm, but with the
	// hot-shard key skew.
	var arrivals, dropped uint64
	rng := vclock.NewRand(*seed + 11)
	lambdaTick := offered / 1000
	next := start
	for time.Since(start) < dur {
		n := poisson(rng, lambdaTick)
		now := time.Now()
		for j := 0; j < n; j++ {
			arrivals++
			k := reshardSpread(keys, reshardNextKey(rng, keys))
			op := reshardOp(rng, k)
			select {
			case queue <- swarmArrival{op: op, t0: now}:
			default:
				dropped++
			}
		}
		next = next.Add(time.Millisecond)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	close(queue)
	wg.Wait()
	chaosWG.Wait()

	// Merge per-worker histograms into per-bucket and windowed views.
	bhist := make([]*metrics.Histogram, nb)
	for b := 0; b < nb; b++ {
		bhist[b] = &metrics.Histogram{}
		for w := 0; w < nw; w++ {
			bhist[b].Merge(hists[w][b])
		}
	}
	trig, done := int(trigBucket.Load()), int(doneBucket.Load())
	if trig < 1 {
		trig = 1
	}
	if done < trig || done >= nb {
		done = nb - 2
	}
	window := func(lo, hi int) (float64, uint64) { // [lo, hi)
		if lo < 0 {
			lo = 0
		}
		if hi > nb {
			hi = nb
		}
		if hi <= lo {
			return 0, 0
		}
		h := &metrics.Histogram{}
		n := uint64(0)
		for b := lo; b < hi; b++ {
			h.Merge(bhist[b])
			n += atomic.LoadUint64(&okBucket[b])
		}
		secs := float64(hi-lo) * reshardTickBucket.Seconds()
		return float64(n) / secs, h.Snapshot().P99
	}
	// Skip the ramp-up bucket in the baseline and the final partial one in
	// the post window.
	baseGood, baseP99 := window(1, trig)
	migGood, migP99 := window(trig, done+1)
	postGood, postP99 := window(done+1, nb-1)

	cm := c.ClusterMetrics()
	res := reshardResult{
		OfferedOps:       offered,
		Arrivals:         arrivals,
		Completed:        completed.Load(),
		Errors:           errs.Load(),
		Dropped:          dropped,
		ShardsBefore:     reshardShards,
		ShardsAfter:      cm.Topology.Shards,
		ReshardMS:        reshardMS.Load(),
		ReshardOK:        reshardOK.Load(),
		BaselineGoodput:  baseGood,
		MigrationGoodput: migGood,
		PostGoodput:      postGood,
		BaselineP99Ns:    baseP99,
		MigrationP99Ns:   migP99,
		PostP99Ns:        postP99,
		RoutingEpochBumps: cm.Topology.Epoch,
		RoutingGen:        cm.Topology.RoutingGen,
		MovesDone:         cm.Topology.MovesDone,
		RedirectedOps:     cm.Topology.Redirects,
		TriggerBucket:     trig,
		DoneBucket:        done,
		TimelineBucketMS:  reshardTickBucket.Milliseconds(),
	}
	if baseGood > 0 {
		res.MigrationGoodputRatio = migGood / baseGood
	}
	if baseP99 > 0 {
		res.PostP99Ratio = float64(postP99) / float64(baseP99)
	}
	res.TimelineOK = okBucket
	for b := 0; b < nb; b++ {
		res.TimelineP99Us = append(res.TimelineP99Us, bhist[b].Snapshot().P99/1000)
	}
	// Readback: sample logical keys across the line; every one was
	// durably acknowledged at preload (and maybe overwritten since), so
	// every one must still be present after the migration.
	res.ReadbackOK = true
	sess := c.NewSession()
	defer sess.Close()
	for k := uint64(1); k <= keys; k += keys/200 + 1 {
		if _, ok, err := sess.Get(reshardSpread(keys, k)); err != nil || !ok {
			res.ReadbackOK = false
			break
		}
	}
	return res
}

// reshardOp draws the bench's 80/20 get/put op for key k. Scans and
// deletes are left out on purpose: a merged cross-shard Range flattens
// the per-shard timeline this scenario exists to chart.
func reshardOp(rng *vclock.Rand, k uint64) workload.Op {
	if rng.Uint64()%100 < 80 {
		return workload.Op{Kind: workload.OpGet, Key: k}
	}
	return workload.Op{Kind: workload.OpPut, Key: k}
}

// loadReshardFile parses the artifact at path, or returns a fresh one.
func loadReshardFile(path string) (*reshardBenchFile, error) {
	rf := &reshardBenchFile{
		Suite: "Reshard",
		Note: "Open-loop load with a deliberately hot range shard through a " +
			"live 4->8 reshard; regenerate with `make bench-reshard`. The two " +
			"ratios are the contract: migration_goodput_ratio compares goodput " +
			"while the migration runs against the pre-trigger baseline (target " +
			">= 0.9 — the copy runs behind the serving path), and post_p99_ratio " +
			"compares post-split p99 against baseline (target < 1 — the hot " +
			"interval now spans two shards). Numbers are machine-dependent: " +
			"check gomaxprocs/num_cpu; the offered rate is calibrated per " +
			"machine unless -swarmrate pins it.",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, rf); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return rf, nil
}

// appendReshardRun merges run into the artifact, replacing any existing
// run with the same label.
func appendReshardRun(path string, rf *reshardBenchFile, run reshardRun) error {
	kept := rf.Runs[:0]
	for _, r := range rf.Runs {
		if r.Label != run.Label {
			kept = append(kept, r)
		}
	}
	rf.Runs = append(kept, run)
	data, err := json.MarshalIndent(rf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
