package main

// The `swarm` subcommand is the open-loop serving benchmark: a Poisson
// arrival process from a large population of logical client sessions
// offered at a fixed rate against a durable sharded Cluster, regardless
// of how fast the cluster answers. Closed-loop benchmarks (hostperf,
// cluster) measure capacity; open-loop measures what users feel when
// arrivals do not politely wait — queueing delay shows up in the sojourn
// (arrival→completion) percentiles, and overload shows up as drops at
// the bounded admission queue instead of unbounded latency.
//
// `swarmchaos` is the same run with a fault schedule: one shard's disk
// is killed mid-run and revived later. The per-shard health breaker must
// confine the damage (healthy-shard goodput holds while routed ops to
// the dead shard fail fast), and the repair loop must bring the shard
// back (WAL replay + probation) before the run ends. The per-bucket
// goodput timeline charts the whole arc: failure, degraded plateau,
// repair, recovery.
//
// Results append to a JSON artifact (-benchjson, conventionally
// BENCH_swarm.json) with the same label-dedup behavior as the other
// artifacts. Numbers are machine-dependent: the offered rate is
// auto-calibrated to a fraction of measured capacity unless -swarmrate
// pins it.

import (
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"encoding/json"

	"eunomia"
	"eunomia/internal/durable"
	"eunomia/internal/harness"
	"eunomia/internal/metrics"
	"eunomia/internal/vclock"
	"eunomia/internal/workload"
)

var (
	swarmRate = flag.Float64("swarmrate", 0,
		"swarm: offered load in ops/s (0 = auto-calibrate to ~75% of measured capacity)")
	swarmDur = flag.Duration("swarmdur", 0,
		"swarm: open-loop run duration (0 = 3s, 1s with -quick)")
	swarmSessions = flag.Int("swarmsessions", 100_000,
		"swarm: distinct logical client sessions in the arrival population")
	swarmQueue = flag.Int("swarmqueue", 4096,
		"swarm: admission queue depth; arrivals beyond it are dropped (load shedding)")
)

// swarmShards is the cluster width both scenarios run against: 4 fault
// domains, so killing one leaves a 3-shard healthy majority.
const swarmShards = 4

// swarmBucket is the goodput timeline resolution.
const swarmBucket = 100 * time.Millisecond

// swarmArrival is one open-loop request: drawn at the generator, stamped
// at arrival, executed by whichever worker dequeues it.
type swarmArrival struct {
	op  workload.Op
	sid uint32 // logical session
	t0  time.Time
}

// swarmResult is one scenario's record in the artifact.
type swarmResult struct {
	Scenario    string  `json:"scenario"` // "swarm" | "swarmchaos"
	OfferedOps  float64 `json:"offered_ops_per_sec"`
	CapacityOps float64 `json:"capacity_ops_per_sec"` // closed-loop calibration
	GoodputOps  float64 `json:"goodput_ops_per_sec"`  // completed-OK rate
	Arrivals    uint64  `json:"arrivals"`
	Completed   uint64  `json:"completed"`
	Errors      uint64  `json:"errors"`
	Dropped     uint64  `json:"dropped"` // shed at the admission queue
	Sessions    int     `json:"sessions"`
	// Sojourn (arrival → completion, queue wait included) percentiles.
	P50Ns  uint64 `json:"p50_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	P999Ns uint64 `json:"p999_ns"`
	// Fault-domain counters from ClusterMetrics at run end.
	Trips         uint64 `json:"trips"`
	Repairs       uint64 `json:"repairs"`
	Shed          uint64 `json:"shed"`
	Retries       uint64 `json:"retries"`
	RetriesDenied uint64 `json:"retries_denied"`
	// Routing-layer counters: epoch bumps count topology changes the run
	// saw (0 unless a reshard ran), redirected ops count ErrMoved
	// retries sessions absorbed while their routing view was stale.
	RoutingEpochBumps uint64 `json:"routing_epoch_bumps"`
	RedirectedOps     uint64 `json:"redirected_ops"`
	// Chaos-only fields.
	KilledShard         int      `json:"killed_shard,omitempty"`
	Repaired            bool     `json:"repaired,omitempty"`
	ReadbackOK          bool     `json:"readback_ok,omitempty"`
	HealthyGoodputRatio float64  `json:"healthy_goodput_ratio,omitempty"`
	KillBucket          int      `json:"kill_bucket,omitempty"`
	RebootBucket        int      `json:"reboot_bucket,omitempty"`
	RepairedBucket      int      `json:"repaired_bucket,omitempty"`
	TimelineBucketMS    int64    `json:"timeline_bucket_ms,omitempty"`
	TimelineHealthy     []uint64 `json:"timeline_healthy,omitempty"` // OK ops on surviving shards, per bucket
	TimelineKilled      []uint64 `json:"timeline_killed,omitempty"`  // OK ops on the killed shard, per bucket
}

// swarmRun is one labeled invocation (both scenarios when chaos runs).
type swarmRun struct {
	Label      string        `json:"label"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Shards     int           `json:"shards"`
	Keys       uint64        `json:"keys"`
	DurationMS int64         `json:"duration_ms"`
	Results    []swarmResult `json:"results"`
}

// swarmFile is the artifact schema.
type swarmFile struct {
	Suite string     `json:"suite"`
	Note  string     `json:"note"`
	Runs  []swarmRun `json:"runs"`
}

// swarmCluster is the system under test plus the handles chaos needs.
type swarmCluster struct {
	c    *eunomia.Cluster
	fses []*durable.MemFS
}

// openSwarmCluster builds the durable 4-shard cluster on per-shard
// in-memory disks (so chaos can kill and revive one), host backend,
// breaker on, repair tuned to complete within the run.
func openSwarmCluster(keys uint64) (*swarmCluster, error) {
	sc := &swarmCluster{}
	for i := 0; i < swarmShards; i++ {
		sc.fses = append(sc.fses, durable.NewMemFS(durable.FaultPlan{}))
	}
	c, err := eunomia.OpenCluster(eunomia.ClusterOptions{
		Shards: swarmShards,
		Shard: eunomia.Options{
			ArenaWords: 1 << 21,
			Backend:    eunomia.Host,
			YieldEvery: 128,
			Durability: eunomia.Durability{Dir: "swarm", FS: durable.NewMemFS(durable.FaultPlan{})},
		},
		PerShard: func(i int, o *eunomia.Options) { o.Durability.FS = sc.fses[i] },
		Health:   eunomia.HealthOptions{Window: 16, TripFailures: 4},
		Repair: eunomia.RepairOptions{Backoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
			Probes: 3, ProbeInterval: 2 * time.Millisecond},
	})
	if err != nil {
		return nil, err
	}
	sc.c = c
	// Preload the whole key space so gets hit and the WALs have real
	// acknowledged state for chaos to endanger.
	sess := c.NewSession()
	defer sess.Close()
	for k := uint64(1); k <= keys; k++ {
		if err := sess.Put(k, k*7+1); err != nil {
			c.Close()
			return nil, fmt.Errorf("preload key %d: %w", k, err)
		}
	}
	return sc, nil
}

// swarmWorkers is the executor pool size: enough to overlap WAL waits
// even on one core.
func swarmWorkers() int {
	n := runtime.GOMAXPROCS(0) * 2
	if n < 8 {
		n = 8
	}
	return n
}

// swarmExec runs one arrival against a worker's Session.
func swarmExec(sess *eunomia.Session, op workload.Op) error {
	switch op.Kind {
	case workload.OpGet:
		_, _, err := sess.Get(op.Key)
		return err
	case workload.OpPut:
		return sess.Put(op.Key, op.Key*7+1)
	case workload.OpDelete:
		_, err := sess.Delete(op.Key)
		return err
	default:
		_, err := sess.Scan(op.Key, op.ScanLen, func(uint64, uint64) bool { return true })
		return err
	}
}

// calibrate measures closed-loop capacity: workers hammering as fast as
// the cluster answers for a short window.
func calibrate(sc *swarmCluster, keys uint64) float64 {
	const window = 150 * time.Millisecond
	nw := swarmWorkers()
	var total atomic.Uint64
	var wg sync.WaitGroup
	stop := time.Now().Add(window)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sc.c.NewSession()
			defer sess.Close()
			rng := vclock.NewRand(*seed + 1000 + uint64(w))
			stream := workload.NewStream(
				workload.Spec{Kind: workload.Zipfian, N: keys, Theta: 0.9}, workload.DefaultMix)
			n := uint64(0)
			for time.Now().Before(stop) {
				if swarmExec(sess, stream.Next(rng)) == nil {
					n++
				}
			}
			total.Add(n)
		}(w)
	}
	wg.Wait()
	return float64(total.Load()) / window.Seconds()
}

// poisson draws one Poisson(lambda) variate: Knuth for small lambda, the
// normal approximation above (exact enough for arrival counts).
func poisson(rng *vclock.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 64 {
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Box-Muller gaussian.
	u1 := rng.Float64()
	for u1 == 0 {
		u1 = rng.Float64()
	}
	g := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*rng.Float64())
	n := int(math.Round(lambda + math.Sqrt(lambda)*g))
	if n < 0 {
		n = 0
	}
	return n
}

// swarmCmd runs one scenario and records it.
func swarmCmd(chaos bool) {
	var sf *swarmFile
	if *benchjson != "" {
		var err error
		if sf, err = loadSwarmFile(*benchjson); err != nil {
			fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
			os.Exit(1)
		}
	}
	dur := *swarmDur
	if dur == 0 {
		dur = 3 * time.Second
		if *quick {
			dur = time.Second
		}
	}
	keys := *keys
	if *quick && keys > 20_000 {
		keys = 20_000
	}

	sc, err := openSwarmCluster(keys)
	if err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	defer sc.c.Close()

	capacity := calibrate(sc, keys)
	offered := *swarmRate
	if offered <= 0 {
		offered = 0.75 * capacity
	}

	res := runSwarm(sc, keys, dur, offered, chaos)
	res.CapacityOps = capacity

	scenario := "swarm"
	if chaos {
		scenario = "swarmchaos"
	}
	tbl := harness.Table{
		Title: fmt.Sprintf("%s: open-loop Poisson load over a %d-shard durable cluster "+
			"(GOMAXPROCS=%d, NumCPU=%d, %d workers, %d sessions, %v)",
			scenario, swarmShards, runtime.GOMAXPROCS(0), runtime.NumCPU(), swarmWorkers(),
			*swarmSessions, dur),
		Header: []string{"offered(ops/s)", "goodput(ops/s)", "arrivals", "completed",
			"errors", "dropped", "p50(us)", "p99(us)", "p999(us)"},
	}
	tbl.AddRow(metrics.FormatOps(res.OfferedOps), metrics.FormatOps(res.GoodputOps),
		fmt.Sprint(res.Arrivals), fmt.Sprint(res.Completed), fmt.Sprint(res.Errors),
		fmt.Sprint(res.Dropped),
		fmt.Sprintf("%.1f", float64(res.P50Ns)/1e3),
		fmt.Sprintf("%.1f", float64(res.P99Ns)/1e3),
		fmt.Sprintf("%.1f", float64(res.P999Ns)/1e3))
	emit(&tbl)
	if chaos {
		fmt.Printf("chaos: shard %d killed at bucket %d, rebooted at %d, re-admitted at %d "+
			"(repaired=%v readback_ok=%v); healthy-shard goodput through the outage: %.1f%% of baseline; "+
			"trips=%d repairs=%d shed=%d retries=%d denied=%d\n",
			res.KilledShard, res.KillBucket, res.RebootBucket, res.RepairedBucket,
			res.Repaired, res.ReadbackOK, 100*res.HealthyGoodputRatio,
			res.Trips, res.Repairs, res.Shed, res.Retries, res.RetriesDenied)
		ch := harness.Chart{
			Title:  "swarmchaos: goodput per 100ms bucket through kill → degrade → repair",
			XLabel: "t(s)", YLabel: "ops/bucket",
			Series: []harness.ChartSeries{{Name: "healthy shards"}, {Name: "killed shard"}},
		}
		for i := range res.TimelineHealthy {
			ch.X = append(ch.X, float64(i)*swarmBucket.Seconds())
			ch.Series[0].Y = append(ch.Series[0].Y, float64(res.TimelineHealthy[i]))
			ch.Series[1].Y = append(ch.Series[1].Y, float64(res.TimelineKilled[i]))
		}
		emitChart(&ch)
	}

	if sf == nil {
		return
	}
	run := swarmRun{
		Label:      *benchlabel + "-" + scenario,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Shards:     swarmShards,
		Keys:       keys,
		DurationMS: dur.Milliseconds(),
		Results:    []swarmResult{res},
	}
	if err := appendSwarmRun(*benchjson, sf, run); err != nil {
		fmt.Fprintf(os.Stderr, "eunobench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (label %q)\n", *benchjson, run.Label)
}

// runSwarm drives the open-loop phase against an opened, preloaded
// cluster and returns the measured result.
func runSwarm(sc *swarmCluster, keys uint64, dur time.Duration, offered float64, chaos bool) swarmResult {
	const killedShard = 1
	nb := int(dur/swarmBucket) + 2
	// Per-bucket completed-OK counts, split healthy-vs-killed so the
	// chaos timeline can chart the fault domain boundary.
	okHealthy := make([]uint64, nb)
	okKilled := make([]uint64, nb)
	var completed, errs atomic.Uint64

	queue := make(chan swarmArrival, *swarmQueue)
	start := time.Now()
	bucketOf := func(t time.Time) int {
		b := int(t.Sub(start) / swarmBucket)
		if b < 0 {
			b = 0
		}
		if b >= nb {
			b = nb - 1
		}
		return b
	}

	// Executor pool: each worker owns a Session (retry budgets are
	// per-session, as they would be per connection in kvserver).
	nw := swarmWorkers()
	hists := make([]*metrics.Histogram, nw)
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		hists[w] = &metrics.Histogram{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := sc.c.NewSession()
			defer sess.Close()
			for a := range queue {
				err := swarmExec(sess, a.op)
				now := time.Now()
				hists[w].Observe(uint64(now.Sub(a.t0)))
				if err != nil {
					errs.Add(1)
					continue
				}
				completed.Add(1)
				b := bucketOf(now)
				if sc.c.ShardFor(a.op.Key) == killedShard {
					atomic.AddUint64(&okKilled[b], 1)
				} else {
					atomic.AddUint64(&okHealthy[b], 1)
				}
			}
		}(w)
	}

	// Fault schedule: kill one disk at 35%, revive it at 60%, then watch
	// for re-admission.
	var killBucket, rebootBucket, repairedBucket atomic.Int64
	killBucket.Store(-1)
	rebootBucket.Store(-1)
	repairedBucket.Store(-1)
	repaired := atomic.Bool{}
	var chaosWG sync.WaitGroup
	if chaos {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			time.Sleep(dur * 35 / 100)
			killBucket.Store(int64(bucketOf(time.Now())))
			sc.fses[killedShard].Kill()
			time.Sleep(dur * 25 / 100)
			rebootBucket.Store(int64(bucketOf(time.Now())))
			sc.fses[killedShard].Reboot()
			deadline := time.Now().Add(dur + 5*time.Second)
			for time.Now().Before(deadline) {
				if sc.c.ShardState(killedShard) == eunomia.ShardHealthy {
					repairedBucket.Store(int64(bucketOf(time.Now())))
					repaired.Store(true)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Open-loop generator: Poisson arrivals in 1ms slots at the offered
	// rate, dropped (not queued) when the admission queue is full.
	var arrivals, dropped uint64
	rng := vclock.NewRand(*seed + 7)
	stream := workload.NewStream(
		workload.Spec{Kind: workload.Zipfian, N: keys, Theta: 0.9}, workload.DefaultMix)
	lambdaTick := offered / 1000
	next := start
	for time.Since(start) < dur {
		n := poisson(rng, lambdaTick)
		now := time.Now()
		for j := 0; j < n; j++ {
			arrivals++
			a := swarmArrival{
				op:  stream.Next(rng),
				sid: uint32(rng.Uint64() % uint64(*swarmSessions)),
				t0:  now,
			}
			select {
			case queue <- a:
			default:
				dropped++
			}
		}
		next = next.Add(time.Millisecond)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	close(queue)
	wg.Wait()
	chaosWG.Wait()

	hist := &metrics.Histogram{}
	for _, h := range hists {
		hist.Merge(h)
	}
	ls := hist.Snapshot()
	cm := sc.c.ClusterMetrics()
	res := swarmResult{
		Scenario:      "swarm",
		OfferedOps:    offered,
		GoodputOps:    float64(completed.Load()) / dur.Seconds(),
		Arrivals:      arrivals,
		Completed:     completed.Load(),
		Errors:        errs.Load(),
		Dropped:       dropped,
		Sessions:      *swarmSessions,
		P50Ns:         ls.P50,
		P99Ns:         ls.P99,
		P999Ns:        ls.P999,
		Trips:         cm.Fault.Trips,
		Repairs:       cm.Fault.Repairs,
		Shed:          cm.Fault.ShedOps,
		Retries:       cm.Fault.Retries,
		RetriesDenied: cm.Fault.RetriesDenied,

		RoutingEpochBumps: cm.Topology.Epoch,
		RedirectedOps:     cm.Topology.Redirects,
	}
	if !chaos {
		return res
	}
	res.Scenario = "swarmchaos"
	res.KilledShard = killedShard
	res.Repaired = repaired.Load()
	res.KillBucket = int(killBucket.Load())
	res.RebootBucket = int(rebootBucket.Load())
	res.RepairedBucket = int(repairedBucket.Load())
	res.TimelineBucketMS = swarmBucket.Milliseconds()
	res.TimelineHealthy = okHealthy
	res.TimelineKilled = okKilled
	res.HealthyGoodputRatio = healthyRatio(okHealthy, res.KillBucket, res.RebootBucket)
	if res.Repaired {
		res.ReadbackOK = swarmReadback(sc, keys, killedShard)
	}
	return res
}

// healthyRatio compares healthy-shard goodput during the outage window
// against the pre-kill baseline: the fault-domain promise is that a dead
// shard costs its own slice of the key space and nothing else.
func healthyRatio(okHealthy []uint64, killB, rebootB int) float64 {
	if killB < 2 || rebootB <= killB+1 {
		return 0
	}
	base := mean(okHealthy[1:killB]) // skip the first (ramp-up) bucket
	out := mean(okHealthy[killB+1 : rebootB])
	if base == 0 {
		return 0
	}
	return out / base
}

func mean(v []uint64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := uint64(0)
	for _, x := range v {
		s += x
	}
	return float64(s) / float64(len(v))
}

// swarmReadback samples keys owned by the re-admitted shard: every key
// was acknowledged durably during preload, so every one must still be
// served after WAL replay.
func swarmReadback(sc *swarmCluster, keys uint64, shard int) bool {
	sess := sc.c.NewSession()
	defer sess.Close()
	checked := 0
	for k := uint64(1); k <= keys && checked < 200; k++ {
		if sc.c.ShardFor(k) != shard {
			continue
		}
		checked++
		if _, ok, err := sess.Get(k); err != nil || !ok {
			return false
		}
	}
	return checked > 0
}

// loadSwarmFile parses the artifact at path, or returns a fresh one.
func loadSwarmFile(path string) (*swarmFile, error) {
	sf := &swarmFile{
		Suite: "Swarm",
		Note: "Open-loop Poisson load (and its chaos variant) against the " +
			"durable 4-shard cluster with fault domains on; regenerate with " +
			"`make bench-swarm`. Sojourn percentiles include queue wait — " +
			"that is the point of open-loop. Numbers are machine-dependent: " +
			"check gomaxprocs/num_cpu, and note the offered rate is " +
			"calibrated per machine unless -swarmrate pins it. In the chaos " +
			"run, healthy_goodput_ratio compares surviving-shard goodput " +
			"during the outage to its pre-kill baseline (target >= 0.9), and " +
			"the timeline arrays chart goodput per 100ms bucket through " +
			"kill, degraded serving, reboot, and repair.",
	}
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, sf); err != nil {
			return nil, fmt.Errorf("%s: %v", path, err)
		}
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return sf, nil
}

// appendSwarmRun merges run into the artifact, replacing any existing
// run with the same label.
func appendSwarmRun(path string, sf *swarmFile, run swarmRun) error {
	kept := sf.Runs[:0]
	for _, r := range sf.Runs {
		if r.Label != run.Label {
			kept = append(kept, r)
		}
	}
	sf.Runs = append(kept, run)
	data, err := json.MarshalIndent(sf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
