package eunomia

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus host-speed micro-benchmarks of the public API.
//
// The figure benchmarks execute in deterministic virtual time and report
// the simulated metrics the paper plots (virtual Mops/s, aborts per
// operation) via b.ReportMetric; host ns/op for these mostly reflects the
// simulator, not the trees. Parameters are scaled down so the whole suite
// completes in minutes; `cmd/eunobench` runs the full-size sweeps.

import (
	"fmt"
	"testing"

	"eunomia/internal/core"
	"eunomia/internal/harness"
	"eunomia/internal/htm"
	"eunomia/internal/metrics"
	"eunomia/internal/workload"
)

const (
	benchKeys = 20_000
	benchOps  = 400
)

func benchCfg(kind harness.TreeKind, threads int, theta float64) harness.Config {
	return harness.Config{
		Tree:         kind,
		Threads:      threads,
		Keys:         benchKeys,
		Dist:         workload.Spec{Kind: workload.Zipfian, Theta: theta},
		OpsPerThread: benchOps,
	}
}

// report runs one harness configuration per b.N iteration (each with a
// distinct seed) and reports the mean of the virtual-time metrics across
// all runs, so `-count` sweeps and benchstat comparisons are stable
// instead of surfacing whichever seed happened to come last.
func report(b *testing.B, cfg harness.Config) {
	b.Helper()
	var throughput, abortsPerOp, wastedPct float64
	var lat metrics.Histogram
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(42 + i)
		r := harness.Run(cfg)
		throughput += r.Throughput
		abortsPerOp += r.AbortsPerOp
		wastedPct += r.WastedPct
		lat.Merge(&r.Latency)
	}
	n := float64(b.N)
	b.ReportMetric(throughput/n/1e6, "vMops/s")
	b.ReportMetric(abortsPerOp/n, "aborts/op")
	b.ReportMetric(wastedPct/n, "wasted%")
	// Virtual per-op latency percentiles, merged across all b.N runs (the
	// histogram is bucketed, so merging commutes with observation).
	ls := lat.Snapshot()
	b.ReportMetric(float64(ls.P50), "p50-cycles")
	b.ReportMetric(float64(ls.P99), "p99-cycles")
	b.ReportMetric(float64(ls.P999), "p999-cycles")
}

// BenchmarkFig1ContentionSweep — Figure 1: the baseline HTM-B+Tree across
// contention rates.
func BenchmarkFig1ContentionSweep(b *testing.B) {
	for _, theta := range []float64{0.2, 0.5, 0.7, 0.9, 0.99} {
		b.Run(fmt.Sprintf("theta=%.2f", theta), func(b *testing.B) {
			report(b, benchCfg(harness.HTMBTree, 16, theta))
		})
	}
}

// BenchmarkFig2AbortBreakdown — Figure 2: abort decomposition of the
// baseline (reported as per-reason aborts/op).
func BenchmarkFig2AbortBreakdown(b *testing.B) {
	for _, theta := range []float64{0.5, 0.9, 0.99} {
		b.Run(fmt.Sprintf("theta=%.2f", theta), func(b *testing.B) {
			cfg := benchCfg(harness.HTMBTree, 16, theta)
			var breakdown [htm.NumAbortReasons]float64
			for i := 0; i < b.N; i++ {
				cfg.Seed = uint64(42 + i)
				r := harness.Run(cfg)
				for reason, v := range r.AbortBreakdown {
					breakdown[reason] += v
				}
			}
			n := float64(b.N)
			b.ReportMetric(breakdown[htm.AbortConflictFalse]/n, "false/op")
			b.ReportMetric(breakdown[htm.AbortConflictTrue]/n, "true/op")
			b.ReportMetric(breakdown[htm.AbortConflictMeta]/n, "meta/op")
			b.ReportMetric(breakdown[htm.AbortFallbackLock]/n, "fblock/op")
		})
	}
}

// BenchmarkFig8Throughput — Figure 8: all four trees across contention.
func BenchmarkFig8Throughput(b *testing.B) {
	for _, kind := range []harness.TreeKind{
		harness.EunoBTree, harness.HTMBTree, harness.Masstree, harness.HTMMasstree,
	} {
		for _, theta := range []float64{0.2, 0.9, 0.99} {
			b.Run(fmt.Sprintf("%s/theta=%.2f", kind, theta), func(b *testing.B) {
				report(b, benchCfg(kind, 16, theta))
			})
		}
	}
}

// BenchmarkFig9Aborts — Figure 9: aborts per op, Euno vs baseline.
func BenchmarkFig9Aborts(b *testing.B) {
	for _, kind := range []harness.TreeKind{harness.HTMBTree, harness.EunoBTree} {
		for _, theta := range []float64{0.9, 0.99} {
			b.Run(fmt.Sprintf("%s/theta=%.2f", kind, theta), func(b *testing.B) {
				report(b, benchCfg(kind, 16, theta))
			})
		}
	}
}

// BenchmarkFig10Scalability — Figure 10: throughput vs thread count at four
// contention levels.
func BenchmarkFig10Scalability(b *testing.B) {
	for _, theta := range []float64{0.2, 0.6, 0.9, 0.99} {
		for _, threads := range []int{1, 4, 16} {
			for _, kind := range []harness.TreeKind{harness.EunoBTree, harness.HTMBTree} {
				b.Run(fmt.Sprintf("theta=%.2f/%s/threads=%d", theta, kind, threads), func(b *testing.B) {
					report(b, benchCfg(kind, threads, theta))
				})
			}
		}
	}
}

// BenchmarkFig11GetPut — Figure 11: get/put ratio sweep at theta=0.9.
func BenchmarkFig11GetPut(b *testing.B) {
	for _, get := range []int{0, 20, 50, 70} {
		for _, kind := range []harness.TreeKind{harness.EunoBTree, harness.HTMBTree} {
			b.Run(fmt.Sprintf("get=%d%%/%s", get, kind), func(b *testing.B) {
				cfg := benchCfg(kind, 16, 0.9)
				cfg.Mix = workload.Mix{GetPct: get, PutPct: 100 - get}
				report(b, cfg)
			})
		}
	}
}

// BenchmarkFig12Distributions — Figure 12: input distribution sweep.
func BenchmarkFig12Distributions(b *testing.B) {
	dists := []workload.Spec{
		{Kind: workload.Poisson, N: benchKeys},
		{Kind: workload.Normal, N: benchKeys},
		{Kind: workload.SelfSimilar, N: benchKeys},
		{Kind: workload.Zipfian, N: benchKeys, Theta: 0.9},
	}
	for _, d := range dists {
		for _, kind := range []harness.TreeKind{harness.EunoBTree, harness.HTMBTree} {
			b.Run(fmt.Sprintf("%s/%s", d.Kind, kind), func(b *testing.B) {
				cfg := benchCfg(kind, 16, 0)
				cfg.Dist = d
				report(b, cfg)
			})
		}
	}
}

// BenchmarkFig13Ablation — Figure 13: the cumulative design-choice chain.
func BenchmarkFig13Ablation(b *testing.B) {
	for _, theta := range []float64{0.2, 0.9} {
		b.Run(fmt.Sprintf("Baseline/theta=%.2f", theta), func(b *testing.B) {
			report(b, benchCfg(harness.HTMBTree, 16, theta))
		})
		for _, ab := range core.AblationConfigs() {
			ab := ab
			b.Run(fmt.Sprintf("%s/theta=%.2f", ab.Name, theta), func(b *testing.B) {
				cfg := benchCfg(harness.EunoBTree, 16, theta)
				ec := ab.Cfg
				cfg.EunoCfg = &ec
				report(b, cfg)
			})
		}
	}
}

// BenchmarkMemOverhead — Section 5.7: Euno-B+Tree memory vs the baseline
// holding identical contents.
func BenchmarkMemOverhead(b *testing.B) {
	for _, theta := range []float64{0.2, 0.9} {
		b.Run(fmt.Sprintf("theta=%.2f", theta), func(b *testing.B) {
			var overhead float64
			for i := 0; i < b.N; i++ {
				cfg := benchCfg(harness.EunoBTree, 8, theta)
				cfg.Seed = uint64(42 + i)
				_, _, o := harness.MemoryComparison(cfg)
				overhead += o
			}
			b.ReportMetric(overhead/float64(b.N), "overhead%")
		})
	}
}

// BenchmarkWallOps measures host-speed single-thread throughput of the
// public API (real ns/op, not virtual time).
func BenchmarkWallOps(b *testing.B) {
	for _, kind := range []Kind{EunoBTree, HTMBTree, Masstree} {
		b.Run(kind.String()+"/put", func(b *testing.B) {
			db, err := Open(Options{Kind: kind, ArenaWords: 1 << 25})
			if err != nil {
				b.Fatal(err)
			}
			th := db.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Put(uint64(i%100000)+1, uint64(i))
			}
		})
		b.Run(kind.String()+"/get", func(b *testing.B) {
			db, err := Open(Options{Kind: kind, ArenaWords: 1 << 25})
			if err != nil {
				b.Fatal(err)
			}
			th := db.NewThread()
			for i := uint64(1); i <= 100000; i++ {
				th.Put(i, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Get(uint64(i%100000) + 1)
			}
		})
	}
}

// BenchmarkHostOps is BenchmarkWallOps on the host backend: the cost model
// is off, so ns/op is the protocol itself (TL2 bookkeeping + tree logic),
// not the emulator. The WallOps/HostOps ratio is the emulator's overhead.
func BenchmarkHostOps(b *testing.B) {
	for _, kind := range []Kind{EunoBTree, HTMBTree, Masstree} {
		b.Run(kind.String()+"/put", func(b *testing.B) {
			db, err := Open(Options{Kind: kind, ArenaWords: 1 << 25, Backend: Host})
			if err != nil {
				b.Fatal(err)
			}
			th := db.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Put(uint64(i%100000)+1, uint64(i))
			}
		})
		b.Run(kind.String()+"/get", func(b *testing.B) {
			db, err := Open(Options{Kind: kind, ArenaWords: 1 << 25, Backend: Host})
			if err != nil {
				b.Fatal(err)
			}
			th := db.NewThread()
			for i := uint64(1); i <= 100000; i++ {
				th.Put(i, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				th.Get(uint64(i%100000) + 1)
			}
		})
	}
}

// BenchmarkHostParallel drives the host backend from every benchmark
// goroutine at once (one Thread each) — the scaling half of the host
// story. Run with -cpu 1,2,4,8 on a multi-core machine to see it.
func BenchmarkHostParallel(b *testing.B) {
	for _, kind := range []Kind{EunoBTree, HTMBTree, Masstree} {
		for _, mix := range []struct {
			name   string
			getPct int
		}{{"readonly", 100}, {"mixed", 50}} {
			b.Run(fmt.Sprintf("%s/%s", kind, mix.name), func(b *testing.B) {
				db, err := Open(Options{Kind: kind, ArenaWords: 1 << 25, Backend: Host})
				if err != nil {
					b.Fatal(err)
				}
				setup := db.NewThread()
				const keys = 100_000
				for i := uint64(1); i <= keys; i++ {
					setup.Put(i, i)
				}
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					th := db.NewThread()
					i := 0
					for pb.Next() {
						k := uint64(i%keys) + 1
						if i%100 < mix.getPct {
							th.Get(k)
						} else {
							th.Put(k, uint64(i))
						}
						i++
					}
				})
			})
		}
	}
}
