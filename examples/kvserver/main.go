// kvserver exposes a Euno-B+Tree over TCP with a minimal text protocol —
// the "in-memory database index" deployment the paper's introduction
// motivates (DBX-style stores front their HTM B+Trees with exactly this
// kind of request loop).
//
// Protocol (one request per line):
//
//	GET <key>            -> VALUE <v> | NOT_FOUND
//	PUT <key> <value>    -> OK
//	DEL <key>            -> OK | NOT_FOUND
//	SCAN <from> <n>      -> n lines "PAIR <k> <v>", then END
//	STATS                -> one line of commit/abort counters
//
// Run with no arguments for a self-contained demo: the server starts on a
// loopback port, a handful of concurrent clients apply a contended
// workload through real sockets, and the tree's HTM statistics are
// printed. Run with -listen :7070 to serve interactively (e.g. with nc).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"eunomia"
	"eunomia/internal/vclock"
	"eunomia/internal/workload"
)

var (
	listen     = flag.String("listen", "", "address to serve on (empty = run the built-in demo)")
	resilience = flag.Bool("resilience", false, "enable the abort-storm hardening layer (backoff, queued fallback, storm detector, watchdog)")
)

// maxScan bounds one SCAN reply; a request like "SCAN 0 18446744073709551615"
// must not convert to a negative (or effectively unbounded) iteration count.
const maxScan = 4096

type server struct {
	db       *eunomia.DB
	requests atomic.Uint64
}

// serveConn handles one client connection; each connection gets its own
// tree Thread, mirroring a per-connection worker. A panic while serving one
// client tears down that connection only — the server and every other
// client keep running.
func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			log.Printf("kvserver: connection %s: recovered: %v", conn.RemoteAddr(), r)
		}
	}()
	th := s.db.NewThread()
	in := bufio.NewScanner(conn)
	out := bufio.NewWriter(conn)
	defer out.Flush()
	for in.Scan() {
		s.requests.Add(1)
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			continue
		}
		switch strings.ToUpper(fields[0]) {
		case "GET":
			if k, err := parse1(fields); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else if v, ok := th.Get(k); ok {
				fmt.Fprintf(out, "VALUE %d\n", v)
			} else {
				fmt.Fprintln(out, "NOT_FOUND")
			}
		case "PUT":
			k, v, err := parse2(fields)
			if err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
				break
			}
			if err := th.Put(k, v); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "DEL":
			if k, err := parse1(fields); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else if th.Delete(k) {
				fmt.Fprintln(out, "OK")
			} else {
				fmt.Fprintln(out, "NOT_FOUND")
			}
		case "SCAN":
			from, n, err := parse2(fields)
			if err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
				break
			}
			if n > maxScan {
				n = maxScan
			}
			th.Scan(from, int(n), func(k, v uint64) bool {
				fmt.Fprintf(out, "PAIR %d %d\n", k, v)
				return true
			})
			fmt.Fprintln(out, "END")
		case "STATS":
			st := th.Stats()
			rs := s.db.ResilienceStats()
			fmt.Fprintf(out, "STATS commits=%d aborts=%d fallbacks=%d backoff=%d degraded=%d watchdog=%d storms=%d\n",
				st.Commits, st.Aborts, st.Fallbacks,
				st.BackoffCycles, st.DegradationEvents, st.WatchdogTrips, rs.StormEvents)
		case "QUIT":
			return
		default:
			fmt.Fprintf(out, "ERR unknown command %q\n", fields[0])
		}
		if out.Buffered() > 32<<10 {
			out.Flush()
		}
		out.Flush()
	}
	// A scan error (oversized line, mid-request disconnect) tears this
	// connection down cleanly; the listener and other clients are unaffected.
	if err := in.Err(); err != nil {
		log.Printf("kvserver: connection %s: %v", conn.RemoteAddr(), err)
	}
}

func parse1(f []string) (uint64, error) {
	if len(f) != 2 {
		return 0, fmt.Errorf("want 1 argument")
	}
	return strconv.ParseUint(f[1], 10, 64)
}

func parse2(f []string) (uint64, uint64, error) {
	if len(f) != 3 {
		return 0, 0, fmt.Errorf("want 2 arguments")
	}
	a, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.ParseUint(f[2], 10, 64)
	return a, b, err
}

func (s *server) run(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go s.serveConn(conn)
	}
}

func main() {
	flag.Parse()
	db, err := eunomia.Open(eunomia.Options{ArenaWords: 1 << 23, YieldEvery: 128, Resilience: *resilience})
	if err != nil {
		log.Fatal(err)
	}
	s := &server{db: db}

	addr := *listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	go s.run(ln)
	fmt.Printf("kvserver listening on %s (%s)\n", ln.Addr(), db.Kind())

	if *listen != "" {
		select {} // serve forever
	}

	// Built-in demo: concurrent clients over real sockets.
	const clients, requests = 4, 2_000
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			in := bufio.NewScanner(conn)
			out := bufio.NewWriter(conn)
			stream := workload.NewStream(
				workload.Spec{Kind: workload.Zipfian, N: 5_000, Theta: 0.9},
				workload.Mix{GetPct: 50, PutPct: 45, DeletePct: 3, ScanPct: 2, ScanLen: 5})
			rng := vclock.NewRand(uint64(c) + 11)
			for i := 0; i < requests; i++ {
				op := stream.Next(rng)
				switch op.Kind {
				case workload.OpGet:
					fmt.Fprintf(out, "GET %d\n", op.Key)
				case workload.OpPut:
					fmt.Fprintf(out, "PUT %d %d\n", op.Key, op.Key*7)
				case workload.OpDelete:
					fmt.Fprintf(out, "DEL %d\n", op.Key)
				case workload.OpScan:
					fmt.Fprintf(out, "SCAN %d %d\n", op.Key, op.ScanLen)
				}
				out.Flush()
				// Read the reply: scans end with "END"; every other
				// command answers with a single line.
				if op.Kind == workload.OpScan {
					for in.Scan() && in.Text() != "END" {
					}
				} else if !in.Scan() {
					log.Fatal("connection closed early")
				}
			}
			fmt.Fprintln(out, "QUIT")
			out.Flush()
		}(c)
	}
	wg.Wait()
	fmt.Printf("served %d requests from %d concurrent clients\n", s.requests.Load(), clients)

	// Verify a few keys through a fresh connection.
	conn, _ := net.Dial("tcp", ln.Addr().String())
	fmt.Fprintf(conn, "PUT 1 42\nGET 1\nSTATS\nQUIT\n")
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fmt.Println("  reply:", sc.Text())
	}
	conn.Close()
}
