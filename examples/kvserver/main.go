// kvserver exposes a sharded cluster of Euno-B+Trees over TCP with a
// minimal text protocol — the "in-memory database index" deployment the
// paper's introduction motivates (DBX-style stores front their HTM
// B+Trees with exactly this kind of request loop). -shards N partitions
// the key space across N independent trees (own arena, HTM device, WAL
// group, metrics domain each); requests route by key, SCAN merges the
// per-shard iterators into one ordered stream.
//
// Protocol (one request per line):
//
//	GET <key>            -> VALUE <v> | NOT_FOUND
//	PUT <key> <value>    -> OK
//	DEL <key>            -> OK | NOT_FOUND
//	SCAN <from> <n>      -> n lines "PAIR <k> <v>", then END
//	SYNC                 -> OK (forces buffered WAL bytes to disk, all shards)
//	SNAPSHOT             -> OK (consistent cluster-wide snapshot: barrier
//	                        manifest + per-shard snapshot/truncate)
//	RESHARD <n>          -> OK | ERR ... (live topology change to n shards;
//	                        blocks this connection until the migration
//	                        completes — other connections keep serving
//	                        through the epoched routing table, and in
//	                        durable mode the migration itself is
//	                        crash-safe: a restart resumes or rolls forward)
//	STATS                -> one line: the Cluster.Metrics() aggregate —
//	                        cluster-wide commit/abort counters, the abort
//	                        decomposition by reason, durability counters,
//	                        per-shard health + fault-domain counters, the
//	                        serving-edge shed counters, and (with -heatmap)
//	                        the hottest contended leaves
//
// Overload protection (the serving edge must shed, not queue): any
// request may instead draw
//
//	BUSY <reason>
//
// when the server is saturated — the in-flight admission semaphore is
// full (-maxinflight), or one connection pipelined more than -maxburst
// requests without draining its replies. A connection beyond -maxconns
// is answered "BUSY too many connections" and closed at accept time.
// BUSY is a complete reply: the request was NOT executed, and the client
// should back off and retry. STATS and QUIT are exempt from admission so
// the server stays observable while saturated. Per-connection
// -read-timeout/-write-timeout deadlines bound how long a dead or
// glacial client can hold a connection slot.
//
// Run with no arguments for a self-contained demo: the server starts on a
// loopback port, a handful of concurrent clients apply a contended
// workload through real sockets, and the cluster's HTM statistics are
// printed. Run with -listen :7070 to serve interactively (e.g. with nc).
//
// With -durable DIR every acknowledged PUT/DEL is crash-durable: writes
// group-commit through the owning shard's write-ahead log under
// DIR/shard-<i> and are replayed on the next start, which also verifies
// the cluster snapshot barrier (a shard rolled back behind a committed
// cluster snapshot refuses to serve). SIGINT/SIGTERM triggers a graceful
// shutdown: the listener closes, in-flight requests drain (bounded by
// -drain), every shard's WAL is flushed, and the process exits 0.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"maps"
	"net"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"eunomia"
	"eunomia/internal/vclock"
	"eunomia/internal/workload"
)

var (
	listen     = flag.String("listen", "", "address to serve on (empty = run the built-in demo)")
	shards     = flag.Int("shards", 4, "number of independent tree shards the key space is partitioned across; when the flag is not set, a durable cluster adopts whatever topology its store recorded (RESHARD survives restarts)")
	resilience = flag.Bool("resilience", false, "enable the abort-storm hardening layer (backoff, queued fallback, storm detector, watchdog)")
	durableDir = flag.String("durable", "", "directory for the write-ahead log and snapshots (empty = in-memory only)")
	flushEvery = flag.Duration("flush-interval", 0, "group-commit flush interval (0 = leader-based immediate commit)")
	snapBytes  = flag.Int64("snapshot-bytes", 16<<20, "WAL bytes between automatic snapshots (durable mode)")
	drainFor   = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain deadline for in-flight connections")
	heatmap    = flag.Bool("heatmap", false, "enable the per-leaf contention heatmap (surfaced in STATS)")

	maxConns    = flag.Int("maxconns", 1024, "max concurrent connections; excess connections get BUSY and are closed (0 = unlimited)")
	maxInflight = flag.Int("maxinflight", 256, "max cluster requests executing at once; excess requests get BUSY instead of queueing (0 = unlimited)")
	maxBurst    = flag.Int("maxburst", 64, "max pipelined requests one connection may have outstanding; excess requests in the burst get BUSY (0 = unlimited)")
	readTimeout = flag.Duration("read-timeout", 5*time.Minute, "per-connection read deadline: a client idle longer is disconnected (0 = none)")
	writeTo     = flag.Duration("write-timeout", 10*time.Second, "per-connection write deadline for each reply flush (0 = none)")
)

// maxScan bounds one SCAN reply; a request like "SCAN 0 18446744073709551615"
// must not convert to a negative (or effectively unbounded) iteration count.
const maxScan = 4096

// maxLineBytes bounds one request line; a longer line (no newline within
// the read buffer) tears down the offending connection.
const maxLineBytes = 64 << 10

// limits is the serving-edge overload policy: shed (fast BUSY) instead
// of queueing, and never let one client monopolize the edge. Zero fields
// disable the corresponding limit.
type limits struct {
	maxConns     int           // concurrent connections before accept-time BUSY
	maxInflight  int           // cluster requests executing at once before BUSY
	maxBurst     int           // pipelined requests per connection before BUSY
	readTimeout  time.Duration // per-connection idle read deadline
	writeTimeout time.Duration // per-reply flush deadline
}

// defaultLimits mirrors the flag defaults for servers built in tests.
func defaultLimits() limits {
	return limits{maxConns: 1024, maxInflight: 256, maxBurst: 64,
		readTimeout: 5 * time.Minute, writeTimeout: 10 * time.Second}
}

type server struct {
	// store is the data plane: every GET/PUT/DEL/SCAN/SYNC/SNAPSHOT goes
	// through the unified Store/Handle API, so the same server code can
	// front a single *eunomia.DB or a sharded *eunomia.Cluster. The
	// cluster-only verbs (RESHARD, the STATS topology/health sections)
	// type-assert for the concrete Cluster.
	store    eunomia.Store
	lim      limits
	inflight chan struct{} // admission semaphore; nil when unlimited
	requests atomic.Uint64

	// Serving-edge shed counters (surfaced in STATS).
	busyShed      atomic.Uint64 // BUSY replies: admission full or burst cap
	connsRejected atomic.Uint64 // connections refused at accept time

	closing atomic.Bool
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	wg      sync.WaitGroup
}

func newServer(st eunomia.Store) *server { return newServerLimits(st, defaultLimits()) }

// cluster returns the concrete Cluster behind the store, or nil when the
// server fronts a single DB.
func (s *server) cluster() *eunomia.Cluster {
	c, _ := s.store.(*eunomia.Cluster)
	return c
}

func newServerLimits(st eunomia.Store, lim limits) *server {
	s := &server{store: st, lim: lim, conns: map[net.Conn]struct{}{}}
	if lim.maxInflight > 0 {
		s.inflight = make(chan struct{}, lim.maxInflight)
	}
	return s
}

// serveConn handles one client connection; each connection gets its own
// cluster Session (one tree Thread per shard), mirroring a per-connection
// worker. A panic while serving one client tears down that connection only
// — the server and every other client keep running.
func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	defer func() {
		if r := recover(); r != nil {
			log.Printf("kvserver: connection %s: recovered: %v", conn.RemoteAddr(), r)
		}
	}()
	th := s.store.NewHandle()
	defer th.Close()
	rd := bufio.NewReaderSize(conn, maxLineBytes)
	out := bufio.NewWriter(conn)
	defer out.Flush()
	burst := 0
	for {
		if s.lim.readTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.lim.readTimeout))
		}
		line, err := rd.ReadSlice('\n')
		if err != nil {
			// A line with no newline inside the whole read buffer is an
			// oversized request: tear down this connection only. Reads that
			// time out (idle client past -read-timeout) or fail end the
			// connection the same way; the listener and every other client
			// keep running.
			switch {
			case err == bufio.ErrBufferFull:
				log.Printf("kvserver: connection %s: request line exceeds %d bytes", conn.RemoteAddr(), maxLineBytes)
			case err != io.EOF:
				log.Printf("kvserver: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.requests.Add(1)
		// Burst accounting: a request is part of a pipelined burst when
		// more input is already buffered behind it — the client is not
		// reading replies between requests. A drained buffer resets the
		// burst.
		if rd.Buffered() > 0 {
			burst++
		} else {
			burst = 0
		}
		fields := strings.Fields(string(line))
		if len(fields) == 0 {
			continue
		}
		if s.lim.writeTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.lim.writeTimeout))
		}
		verb := strings.ToUpper(fields[0])
		admitted := false
		switch verb {
		case "STATS", "QUIT":
			// Exempt from admission: the edge must stay observable (and
			// connections closable) while it is shedding load.
		default:
			if s.lim.maxBurst > 0 && burst > s.lim.maxBurst {
				s.busyShed.Add(1)
				fmt.Fprintln(out, "BUSY pipelined burst limit")
				out.Flush()
				continue
			}
			if s.inflight != nil {
				select {
				case s.inflight <- struct{}{}:
					admitted = true
				default:
					// Shed, don't queue: a fast BUSY keeps the reply loop
					// bounded no matter how deep the arrival backlog is.
					s.busyShed.Add(1)
					fmt.Fprintln(out, "BUSY server overloaded")
					out.Flush()
					continue
				}
			}
		}
		switch verb {
		case "GET":
			if k, err := parse1(fields); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else if v, ok, err := th.Get(k); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else if ok {
				fmt.Fprintf(out, "VALUE %d\n", v)
			} else {
				fmt.Fprintln(out, "NOT_FOUND")
			}
		case "PUT":
			k, v, err := parse2(fields)
			if err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
				break
			}
			// OK is sent only after Put returns, which in durable mode
			// means only after the write is on disk.
			if err := th.Put(k, v); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "DEL":
			if k, err := parse1(fields); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else if ok, err := th.Delete(k); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else if ok {
				fmt.Fprintln(out, "OK")
			} else {
				fmt.Fprintln(out, "NOT_FOUND")
			}
		case "SCAN":
			from, n, err := parse2(fields)
			if err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
				break
			}
			if n > maxScan {
				n = maxScan
			}
			if _, err := th.Scan(from, int(n), func(k, v uint64) bool {
				fmt.Fprintf(out, "PAIR %d %d\n", k, v)
				return true
			}); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
				break
			}
			fmt.Fprintln(out, "END")
		case "SYNC":
			if err := s.store.Sync(); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "SNAPSHOT":
			if err := s.store.Snapshot(); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "RESHARD":
			// Blocks this connection for the whole migration; every other
			// connection keeps serving through the epoched routing table.
			c, ok := s.store.(*eunomia.Cluster)
			if !ok {
				fmt.Fprintln(out, "ERR store is not a cluster")
			} else if n, err := parse1(fields); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else if n > 64 {
				fmt.Fprintln(out, "ERR cluster supports <= 64 shards")
			} else if err := c.Reshard(int(n)); err != nil {
				fmt.Fprintf(out, "ERR %v\n", err)
			} else {
				fmt.Fprintln(out, "OK")
			}
		case "STATS":
			// One coherent snapshot for the whole server: every shard,
			// every connection's threads — not just this connection. The
			// base sections come from the unified Store metrics; the
			// per-shard health and topology sections exist only when the
			// store is a Cluster.
			m := s.store.Metrics()
			cluster, _ := s.store.(*eunomia.Cluster)
			nshards := 1
			if cluster != nil {
				nshards = cluster.Shards()
			}
			fmt.Fprintf(out, "STATS shards=%d commits=%d aborts=%d fallbacks=%d backoff=%d degraded=%d watchdog=%d storms=%d",
				nshards, m.Tx.Commits, m.Tx.Aborts, m.Tx.Fallbacks,
				m.Tx.BackoffCycles, m.Tx.DegradationEvents, m.Tx.WatchdogTrips, m.Resilience.StormEvents)
			for _, reason := range slices.Sorted(maps.Keys(m.Tx.AbortsByReason)) {
				fmt.Fprintf(out, " abort[%s]=%d", reason, m.Tx.AbortsByReason[reason])
			}
			if ds := m.Durability; ds.Enabled {
				fmt.Fprintf(out, " flushes=%d batch_avg=%.1f flush_p99_us=%d snapshots=%d replayed=%d",
					ds.Flushes, ds.AvgBatch, ds.FlushP99Ns/1000, ds.Snapshots, ds.ReplayedFrames)
			}
			if tr := m.Tree; tr.CombinedBatches > 0 || tr.EliminatedPairs > 0 {
				fmt.Fprintf(out, " combined_batches=%d combined_ops=%d eliminated=%d",
					tr.CombinedBatches, tr.CombinedOps, tr.EliminatedPairs)
			}
			if cluster != nil {
				cm := cluster.ClusterMetrics()
				// Fault domains (one letter per shard: H/D/F/R) + serving edge.
				states := make([]byte, cm.Shards)
				for i, h := range cm.Health {
					states[i] = h.State.String()[0] - 'a' + 'A'
				}
				fmt.Fprintf(out, " health=%s trips=%d repairs=%d shed=%d retries=%d retries_denied=%d busy=%d conns_rejected=%d",
					states, cm.Fault.Trips, cm.Fault.Repairs, cm.Fault.ShedOps,
					cm.Fault.Retries, cm.Fault.RetriesDenied, s.busyShed.Load(), s.connsRejected.Load())
				tm := cm.Topology
				fmt.Fprintf(out, " epoch=%d gen=%d migrating=%v moves_done=%d redirects=%d autosplits=%d",
					tm.Epoch, tm.RoutingGen, tm.Migrating, tm.MovesDone, tm.Redirects, tm.AutoSplits)
			}
			if c := m.Contention; c.Enabled {
				fmt.Fprintf(out, " heat_aborts=%d", c.AbortsSeen)
				for i, l := range c.HotLeaves {
					if i == 3 {
						break
					}
					site := "line"
					if l.Annotated {
						site = "leaf"
					}
					fmt.Fprintf(out, " hot[%d]=%s:%#x:%d", i, site, l.ID, l.Total)
				}
			}
			fmt.Fprintln(out)
		case "QUIT":
			return
		default:
			fmt.Fprintf(out, "ERR unknown command %q\n", fields[0])
		}
		if admitted {
			<-s.inflight
		}
		out.Flush()
	}
}

func parse1(f []string) (uint64, error) {
	if len(f) != 2 {
		return 0, fmt.Errorf("want 1 argument")
	}
	return strconv.ParseUint(f[1], 10, 64)
}

func parse2(f []string) (uint64, uint64, error) {
	if len(f) != 3 {
		return 0, 0, fmt.Errorf("want 2 arguments")
	}
	a, err := strconv.ParseUint(f[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.ParseUint(f[2], 10, 64)
	return a, b, err
}

func (s *server) run(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closing.Load() {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		if s.lim.maxConns > 0 && len(s.conns) >= s.lim.maxConns {
			// Refuse at the door with a fast BUSY: a connection the server
			// cannot serve must not sit in the accept queue soaking up a
			// worker and a session.
			s.mu.Unlock()
			s.connsRejected.Add(1)
			conn.SetWriteDeadline(time.Now().Add(time.Second))
			fmt.Fprintln(conn, "BUSY too many connections")
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// shutdown drains the server gracefully: stop accepting, let in-flight
// connections finish (up to drain — after that their reads are cancelled),
// then flush and close every shard. A failing shard does not stop the
// others from draining — Cluster.Close closes them all and joins the
// errors. Every acknowledged write is on disk when shutdown returns.
func (s *server) shutdown(ln net.Listener, drain time.Duration) {
	s.closing.Store(true)
	ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(drain):
		s.mu.Lock()
		for c := range s.conns {
			c.SetReadDeadline(time.Now()) // unblock idle readers
		}
		s.mu.Unlock()
		<-done
	}
	if err := s.store.Close(); err != nil {
		log.Printf("kvserver: close: %v", err)
	}
}

func main() {
	flag.Parse()
	opts := eunomia.Options{ArenaWords: 1 << 22, YieldEvery: 128, Resilience: *resilience,
		Observability: eunomia.Observability{Heatmap: *heatmap}}
	if *durableDir != "" {
		opts.Durability = eunomia.Durability{
			Dir:           *durableDir, // cluster root; shard i logs under shard-<i>
			FlushInterval: *flushEvery,
			SnapshotBytes: *snapBytes,
		}
	}
	// An explicit -shards is a contract (mismatch with a durable store's
	// recorded topology fails with ErrTopologyMismatch); leaving it unset
	// adopts whatever topology the store recorded, so a cluster resharded
	// in a previous run reopens at its committed width.
	nshards := 0
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			nshards = *shards
		}
	})
	c, err := eunomia.OpenCluster(eunomia.ClusterOptions{Shards: nshards, Shard: opts})
	if err != nil {
		log.Fatal(err)
	}
	if ds := c.ClusterMetrics().Agg.Durability; ds.Enabled && (ds.SnapshotPairs > 0 || ds.ReplayedFrames > 0) {
		fmt.Printf("kvserver recovered %d snapshot pairs + %d log frames in %.2f ms across %d shards\n",
			ds.SnapshotPairs, ds.ReplayedFrames, float64(ds.RecoveryNs)/1e6, c.Shards())
	}
	s := newServerLimits(c, limits{
		maxConns:     *maxConns,
		maxInflight:  *maxInflight,
		maxBurst:     *maxBurst,
		readTimeout:  *readTimeout,
		writeTimeout: *writeTo,
	})

	addr := *listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatal(err)
	}
	go s.run(ln)
	fmt.Printf("kvserver listening on %s (%s x %d shards)\n", ln.Addr(), c.DB(0).Kind(), c.Shards())

	if *listen != "" {
		// Serve until SIGINT/SIGTERM, then drain and exit cleanly.
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		got := <-sig
		fmt.Printf("kvserver: %v: draining (deadline %s)\n", got, *drainFor)
		s.shutdown(ln, *drainFor)
		fmt.Println("kvserver: shutdown complete")
		return
	}

	// Built-in demo: concurrent clients over real sockets.
	const clients, requests = 4, 2_000
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Fatal(err)
			}
			defer conn.Close()
			in := bufio.NewScanner(conn)
			out := bufio.NewWriter(conn)
			stream := workload.NewStream(
				workload.Spec{Kind: workload.Zipfian, N: 5_000, Theta: 0.9},
				workload.Mix{GetPct: 50, PutPct: 45, DeletePct: 3, ScanPct: 2, ScanLen: 5})
			rng := vclock.NewRand(uint64(c) + 11)
			for i := 0; i < requests; i++ {
				op := stream.Next(rng)
				switch op.Kind {
				case workload.OpGet:
					fmt.Fprintf(out, "GET %d\n", op.Key)
				case workload.OpPut:
					fmt.Fprintf(out, "PUT %d %d\n", op.Key, op.Key*7)
				case workload.OpDelete:
					fmt.Fprintf(out, "DEL %d\n", op.Key)
				case workload.OpScan:
					fmt.Fprintf(out, "SCAN %d %d\n", op.Key, op.ScanLen)
				}
				out.Flush()
				// Read the reply: scans end with "END"; every other
				// command answers with a single line.
				if op.Kind == workload.OpScan {
					for in.Scan() && in.Text() != "END" {
					}
				} else if !in.Scan() {
					log.Fatal("connection closed early")
				}
			}
			fmt.Fprintln(out, "QUIT")
			out.Flush()
		}(c)
	}
	wg.Wait()
	fmt.Printf("served %d requests from %d concurrent clients\n", s.requests.Load(), clients)

	// Verify a few keys through a fresh connection.
	conn, _ := net.Dial("tcp", ln.Addr().String())
	fmt.Fprintf(conn, "PUT 1 42\nGET 1\nSTATS\nQUIT\n")
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fmt.Println("  reply:", sc.Text())
	}
	conn.Close()
	s.shutdown(ln, *drainFor)
}
