package main

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"eunomia"
)

// startTestServer brings up the server on a loopback port.
func startTestServer(t *testing.T) net.Addr {
	t.Helper()
	db, err := eunomia.Open(eunomia.Options{ArenaWords: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	s := &server{db: db}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go s.run(ln)
	return ln.Addr()
}

func roundTrip(t *testing.T, conn net.Conn, in *bufio.Scanner, req string) string {
	t.Helper()
	if _, err := fmt.Fprintln(conn, req); err != nil {
		t.Fatal(err)
	}
	if !in.Scan() {
		t.Fatalf("no reply to %q", req)
	}
	return in.Text()
}

func TestProtocol(t *testing.T) {
	addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)

	cases := []struct{ req, want string }{
		{"GET 5", "NOT_FOUND"},
		{"PUT 5 50", "OK"},
		{"GET 5", "VALUE 50"},
		{"PUT 5 51", "OK"},
		{"GET 5", "VALUE 51"},
		{"DEL 5", "OK"},
		{"DEL 5", "NOT_FOUND"},
		{"GET 5", "NOT_FOUND"},
		{"BOGUS", `ERR unknown command "BOGUS"`},
		{"PUT x y", "ERR"},
		{"PUT 1 18446744073709551615", "ERR eunomia: value ^uint64(0) is reserved"},
	}
	for _, c := range cases {
		got := roundTrip(t, conn, in, c.req)
		if !strings.HasPrefix(got, c.want) && got != c.want {
			t.Fatalf("%q -> %q, want %q", c.req, got, c.want)
		}
	}
}

func TestProtocolScan(t *testing.T) {
	addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)

	for k := 10; k <= 30; k += 2 {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*10)); got != "OK" {
			t.Fatalf("put: %q", got)
		}
	}
	fmt.Fprintln(conn, "SCAN 14 4")
	var pairs []string
	for in.Scan() {
		line := in.Text()
		if line == "END" {
			break
		}
		pairs = append(pairs, line)
	}
	want := []string{"PAIR 14 140", "PAIR 16 160", "PAIR 18 180", "PAIR 20 200"}
	if len(pairs) != len(want) {
		t.Fatalf("scan: %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, pairs[i], want[i])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startTestServer(t)
	const clients = 4
	done := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			in := bufio.NewScanner(conn)
			base := c * 1000
			for i := 0; i < 200; i++ {
				fmt.Fprintf(conn, "PUT %d %d\n", base+i, i)
				if !in.Scan() || in.Text() != "OK" {
					done <- fmt.Errorf("client %d: bad put reply", c)
					return
				}
			}
			for i := 0; i < 200; i++ {
				fmt.Fprintf(conn, "GET %d\n", base+i)
				if !in.Scan() || in.Text() != fmt.Sprintf("VALUE %d", i) {
					done <- fmt.Errorf("client %d: bad get reply %q", c, in.Text())
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
