package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"eunomia"
	"eunomia/internal/durable"
)

// testShards is the cluster width the protocol tests run against: >1 so
// routing, the merged SCAN, and cross-shard STATS aggregation are all
// exercised by every test.
const testShards = 3

// startTestServer brings up the server on a loopback port.
func startTestServer(t *testing.T) net.Addr {
	t.Helper()
	return startTestServerOpts(t, eunomia.Options{ArenaWords: 1 << 20})
}

// startTestServerOpts is startTestServer with explicit per-shard options.
func startTestServerOpts(t *testing.T, opts eunomia.Options) net.Addr {
	t.Helper()
	_, ln := startServer(t, opts)
	return ln.Addr()
}

// startServer brings up a server over a testShards-wide cluster and
// returns it with its listener, for tests that drive the
// graceful-shutdown path directly.
func startServer(t *testing.T, opts eunomia.Options) (*server, net.Listener) {
	t.Helper()
	return startClusterServer(t, eunomia.ClusterOptions{Shards: testShards, Shard: opts}, defaultLimits())
}

// startClusterServer is the fully general harness: explicit cluster
// options (fault injection, health/repair tuning) and an explicit
// serving-edge overload policy.
func startClusterServer(t *testing.T, co eunomia.ClusterOptions, lim limits) (*server, net.Listener) {
	t.Helper()
	c, err := eunomia.OpenCluster(co)
	if err != nil {
		t.Fatal(err)
	}
	s := newServerLimits(c, lim)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); c.Close() })
	go s.run(ln)
	return s, ln
}

func roundTrip(t *testing.T, conn net.Conn, in *bufio.Scanner, req string) string {
	t.Helper()
	if _, err := fmt.Fprintln(conn, req); err != nil {
		t.Fatal(err)
	}
	if !in.Scan() {
		t.Fatalf("no reply to %q", req)
	}
	return in.Text()
}

func TestProtocol(t *testing.T) {
	addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)

	cases := []struct{ req, want string }{
		{"GET 5", "NOT_FOUND"},
		{"PUT 5 50", "OK"},
		{"GET 5", "VALUE 50"},
		{"PUT 5 51", "OK"},
		{"GET 5", "VALUE 51"},
		{"DEL 5", "OK"},
		{"DEL 5", "NOT_FOUND"},
		{"GET 5", "NOT_FOUND"},
		{"BOGUS", `ERR unknown command "BOGUS"`},
		{"PUT x y", "ERR"},
		{"PUT 1 18446744073709551615", "ERR eunomia: value ^uint64(0) is reserved"},
	}
	for _, c := range cases {
		got := roundTrip(t, conn, in, c.req)
		if !strings.HasPrefix(got, c.want) && got != c.want {
			t.Fatalf("%q -> %q, want %q", c.req, got, c.want)
		}
	}
}

func TestProtocolScan(t *testing.T) {
	addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)

	for k := 10; k <= 30; k += 2 {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*10)); got != "OK" {
			t.Fatalf("put: %q", got)
		}
	}
	fmt.Fprintln(conn, "SCAN 14 4")
	var pairs []string
	for in.Scan() {
		line := in.Text()
		if line == "END" {
			break
		}
		pairs = append(pairs, line)
	}
	want := []string{"PAIR 14 140", "PAIR 16 160", "PAIR 18 180", "PAIR 20 200"}
	if len(pairs) != len(want) {
		t.Fatalf("scan: %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, pairs[i], want[i])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startTestServer(t)
	const clients = 4
	done := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			in := bufio.NewScanner(conn)
			base := c * 1000
			for i := 0; i < 200; i++ {
				fmt.Fprintf(conn, "PUT %d %d\n", base+i, i)
				if !in.Scan() || in.Text() != "OK" {
					done <- fmt.Errorf("client %d: bad put reply", c)
					return
				}
			}
			for i := 0; i < 200; i++ {
				fmt.Fprintf(conn, "GET %d\n", base+i)
				if !in.Scan() || in.Text() != fmt.Sprintf("VALUE %d", i) {
					done <- fmt.Errorf("client %d: bad get reply %q", c, in.Text())
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// dialServer opens a client connection with a read deadline so a wedged
// server fails the test instead of hanging it.
func dialServer(t *testing.T, addr net.Addr) (net.Conn, *bufio.Scanner) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, bufio.NewScanner(conn)
}

// assertAlive proves the server still accepts and serves new connections.
func assertAlive(t *testing.T, addr net.Addr) {
	t.Helper()
	conn, in := dialServer(t, addr)
	if got := roundTrip(t, conn, in, "PUT 777 888"); got != "OK" {
		t.Fatalf("server unhealthy: PUT -> %q", got)
	}
	if got := roundTrip(t, conn, in, "GET 777"); got != "VALUE 888" {
		t.Fatalf("server unhealthy: GET -> %q", got)
	}
}

// TestMalformedRequests: every malformed line must draw an ERR reply (or,
// for unknown verbs, the diagnostic) — never a panic, never a dropped
// connection, and the server keeps serving afterwards.
func TestMalformedRequests(t *testing.T) {
	addr := startTestServer(t)
	conn, in := dialServer(t, addr)

	cases := []struct{ req, wantPrefix string }{
		{"GET", "ERR"},
		{"GET abc", "ERR"},
		{"GET 99999999999999999999999", "ERR"}, // > MaxUint64
		{"GET 5 6", "ERR"},                     // arity
		{"PUT", "ERR"},
		{"PUT 1", "ERR"},
		{"PUT 1 2 3", "ERR"},
		{"PUT -1 5", "ERR"},
		{"DEL", "ERR"},
		{"DEL 18446744073709551616", "ERR"}, // MaxUint64+1
		{"SCAN 1", "ERR"},
		{"SCAN x y", "ERR"},
		{"\x00\x01garbage\x02", "ERR"},
		{"   ", ""},            // blank: no reply, next case must still work
		{"get 5", "NOT_FOUND"}, // verbs are case-insensitive
	}
	for _, c := range cases {
		if c.wantPrefix == "" {
			fmt.Fprintln(conn, c.req)
			continue
		}
		got := roundTrip(t, conn, in, c.req)
		if !strings.HasPrefix(got, c.wantPrefix) {
			t.Fatalf("%q -> %q, want prefix %q", c.req, got, c.wantPrefix)
		}
	}
	assertAlive(t, addr)
}

// TestScanLengthClamp: an adversarial SCAN count (MaxUint64 would convert
// to a negative int) must produce a bounded, END-terminated reply.
func TestScanLengthClamp(t *testing.T) {
	addr := startTestServer(t)
	conn, in := dialServer(t, addr)
	for k := 0; k < 10; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k)); got != "OK" {
			t.Fatalf("put: %q", got)
		}
	}
	for _, req := range []string{
		"SCAN 0 18446744073709551615", // int(n) < 0
		"SCAN 0 9223372036854775807",  // int(n) huge
	} {
		fmt.Fprintln(conn, req)
		lines := 0
		for in.Scan() {
			if in.Text() == "END" {
				break
			}
			lines++
			if lines > maxScan {
				t.Fatalf("%q: reply exceeded the maxScan clamp", req)
			}
		}
		if err := in.Err(); err != nil {
			t.Fatalf("%q: %v", req, err)
		}
		if lines != 10 {
			t.Fatalf("%q: %d pairs, want 10", req, lines)
		}
	}
	assertAlive(t, addr)
}

// TestOversizedLine: a request line beyond the scanner's token limit must
// tear down only that connection — cleanly, with no panic — and leave the
// server serving.
func TestOversizedLine(t *testing.T) {
	addr := startTestServer(t)
	conn, _ := dialServer(t, addr)
	huge := strings.Repeat("A", 128<<10) // > bufio.MaxScanTokenSize
	if _, err := fmt.Fprintf(conn, "GET %s\n", huge); err != nil && !errors.Is(err, net.ErrClosed) {
		// The server may close mid-write; either way the write must not
		// wedge the test.
		t.Logf("write: %v", err)
	}
	// The server drops the connection: reads drain to EOF/reset.
	io.Copy(io.Discard, conn)
	assertAlive(t, addr)
}

// TestTruncatedRequestAndAbruptDisconnect: clients that vanish mid-line or
// mid-session must not wedge or kill the server.
func TestTruncatedRequestAndAbruptDisconnect(t *testing.T) {
	addr := startTestServer(t)

	// Truncated final request: no trailing newline, then an orderly close.
	conn1, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(conn1, "PUT 1") // half a request
	conn1.Close()

	// Abrupt disconnect with a request in flight (RST via SO_LINGER 0).
	conn2, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn2, "PUT 2 2")
	if tc, ok := conn2.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn2.Close()

	assertAlive(t, addr)
}

// TestStatsResilienceFields: the STATS line must carry the resilience
// counters, and a resilience-enabled server must serve the same protocol.
func TestStatsResilienceFields(t *testing.T) {
	addr := startTestServerOpts(t, eunomia.Options{ArenaWords: 1 << 20, Resilience: true})
	conn, in := dialServer(t, addr)
	if got := roundTrip(t, conn, in, "PUT 9 90"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	if got := roundTrip(t, conn, in, "GET 9"); got != "VALUE 90" {
		t.Fatalf("get: %q", got)
	}
	stats := roundTrip(t, conn, in, "STATS")
	for _, field := range []string{"commits=", "aborts=", "fallbacks=", "backoff=", "degraded=", "watchdog=", "storms="} {
		if !strings.Contains(stats, field) {
			t.Fatalf("STATS %q missing %q", stats, field)
		}
	}
}

// TestGracefulShutdown drives the SIGTERM path's worker directly: the
// listener stops accepting, in-flight connections drain, idle connections
// are cancelled at the drain deadline, and the DB ends up closed with
// every acknowledged write flushed.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	s, ln := startServer(t, eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}})
	addr := ln.Addr()

	// An active client completes a durable write before shutdown.
	conn, in := dialServer(t, addr)
	if got := roundTrip(t, conn, in, "PUT 1 11"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	// An idle client sits in a blocked read; the drain deadline must
	// cancel it rather than hang shutdown forever.
	idle, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	done := make(chan struct{})
	go func() {
		s.shutdown(ln, 300*time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown wedged past the drain deadline")
	}

	// New connections must be refused (or immediately closed).
	if c, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := c.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("server accepted a connection after shutdown")
		}
		c.Close()
	}

	// The acknowledged write survived: a fresh server on the same
	// directory recovers it.
	addr2 := startTestServerOpts(t, eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}})
	conn2, in2 := dialServer(t, addr2)
	if got := roundTrip(t, conn2, in2, "GET 1"); got != "VALUE 11" {
		t.Fatalf("write lost across graceful shutdown: %q", got)
	}
}

// TestDurableRestartPreservesData is the protocol-level durability
// round-trip: PUT/DEL through sockets, shut down, restart on the same
// directory, and observe the identical state (with recovery visible in
// STATS).
func TestDurableRestartPreservesData(t *testing.T) {
	dir := t.TempDir()
	opts := eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}}

	s, ln := startServer(t, opts)
	conn, in := dialServer(t, ln.Addr())
	for k := 1; k <= 40; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*3)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	for k := 5; k <= 40; k += 5 {
		if got := roundTrip(t, conn, in, fmt.Sprintf("DEL %d", k)); got != "OK" {
			t.Fatalf("del %d: %q", k, got)
		}
	}
	if got := roundTrip(t, conn, in, "SYNC"); got != "OK" {
		t.Fatalf("sync: %q", got)
	}
	stats := roundTrip(t, conn, in, "STATS")
	if !strings.Contains(stats, "flushes=") {
		t.Fatalf("durable STATS missing flush counters: %q", stats)
	}
	conn.Close()
	s.shutdown(ln, time.Second)

	_, ln2 := startServer(t, opts)
	conn2, in2 := dialServer(t, ln2.Addr())
	for k := 1; k <= 40; k++ {
		got := roundTrip(t, conn2, in2, fmt.Sprintf("GET %d", k))
		if k%5 == 0 {
			if got != "NOT_FOUND" {
				t.Fatalf("deleted key %d resurrected: %q", k, got)
			}
		} else if got != fmt.Sprintf("VALUE %d", k*3) {
			t.Fatalf("key %d lost across restart: %q", k, got)
		}
	}
	stats2 := roundTrip(t, conn2, in2, "STATS")
	if !strings.Contains(stats2, "replayed=") {
		t.Fatalf("post-recovery STATS missing replay counter: %q", stats2)
	}
}

// TestReshardCommand: RESHARD migrates the live cluster to a new width
// with every key intact, STATS reports the new topology, and a restart
// on the same directory with no -shards contract adopts the resharded
// width (while the old width is refused as a topology mismatch).
func TestReshardCommand(t *testing.T) {
	dir := t.TempDir()
	opts := eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}}

	s, ln := startServer(t, opts)
	conn, in := dialServer(t, ln.Addr())
	for k := 1; k <= 60; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*3)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	if got := roundTrip(t, conn, in, "RESHARD 5"); got != "OK" {
		t.Fatalf("reshard: %q", got)
	}
	for k := 1; k <= 60; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("GET %d", k)); got != fmt.Sprintf("VALUE %d", k*3) {
			t.Fatalf("key %d after reshard: %q", k, got)
		}
	}
	stats := roundTrip(t, conn, in, "STATS")
	if got := statValue(t, stats, "shards="); got != 5 {
		t.Fatalf("post-reshard shards = %d, want 5: %q", got, stats)
	}
	if got := statValue(t, stats, "epoch="); got < 1 {
		t.Fatalf("post-reshard epoch = %d, want >= 1: %q", got, stats)
	}
	if got := statValue(t, stats, "moves_done="); got < 1 {
		t.Fatalf("post-reshard moves_done = %d, want >= 1: %q", got, stats)
	}
	if got := roundTrip(t, conn, in, "RESHARD 99"); !strings.HasPrefix(got, "ERR") {
		t.Fatalf("RESHARD 99 -> %q, want ERR", got)
	}
	conn.Close()
	s.shutdown(ln, time.Second)

	// The old width now contradicts the store's recorded topology.
	if _, err := eunomia.OpenCluster(eunomia.ClusterOptions{Shards: testShards, Shard: opts}); !errors.Is(err, eunomia.ErrTopologyMismatch) {
		t.Fatalf("reopen at stale width: err = %v, want ErrTopologyMismatch", err)
	}

	// Shards: 0 (the unset -shards path) adopts the resharded width.
	s2, ln2 := startClusterServer(t, eunomia.ClusterOptions{Shards: 0, Shard: opts}, defaultLimits())
	if got := s2.cluster().Shards(); got != 5 {
		t.Fatalf("restart adopted %d shards, want 5", got)
	}
	conn2, in2 := dialServer(t, ln2.Addr())
	for k := 1; k <= 60; k++ {
		if got := roundTrip(t, conn2, in2, fmt.Sprintf("GET %d", k)); got != fmt.Sprintf("VALUE %d", k*3) {
			t.Fatalf("key %d after restart: %q", k, got)
		}
	}
}

// TestOpsAfterCloseReturnErr: a server whose DB has been closed answers
// requests with ERR instead of panicking or acknowledging.
func TestOpsAfterCloseReturnErr(t *testing.T) {
	s, ln := startServer(t, eunomia.Options{ArenaWords: 1 << 20})
	conn, in := dialServer(t, ln.Addr())
	if got := roundTrip(t, conn, in, "PUT 1 1"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	s.store.Close()
	for _, req := range []string{"GET 1", "PUT 2 2", "DEL 1", "SCAN 0 5"} {
		got := roundTrip(t, conn, in, req)
		if !strings.HasPrefix(got, "ERR") || !strings.Contains(got, "closed") {
			t.Fatalf("%q on closed DB -> %q, want ERR ...closed", req, got)
		}
	}
}

// TestStatsHeatmap: with the contention heatmap enabled, STATS carries
// the heat counters, and once aborts have occurred the hottest sites are
// listed. The abort breakdown keys from the unified Metrics snapshot
// appear as soon as any abort happens.
func TestStatsHeatmap(t *testing.T) {
	addr := startTestServerOpts(t, eunomia.Options{ArenaWords: 1 << 20,
		Observability: eunomia.Observability{Heatmap: true}})
	conn, in := dialServer(t, addr)
	if got := roundTrip(t, conn, in, "PUT 5 50"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	stats := roundTrip(t, conn, in, "STATS")
	if !strings.Contains(stats, "heat_aborts=") {
		t.Fatalf("heatmap STATS missing heat counter: %q", stats)
	}
	// STATS is server-wide: a second connection's writes show up too.
	conn2, in2 := dialServer(t, addr)
	if got := roundTrip(t, conn2, in2, "PUT 6 60"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	s1 := statValue(t, roundTrip(t, conn, in, "STATS"), "commits=")
	if s1 < 2 {
		t.Fatalf("server-wide commits = %d, want >= 2", s1)
	}
}

// TestStatsAggregatesShards: STATS reports the cluster-wide aggregate —
// the shard count appears, and writes that hash to different shards are
// all counted in one commits= figure.
func TestStatsAggregatesShards(t *testing.T) {
	addr := startTestServer(t)
	conn, in := dialServer(t, addr)
	// 32 consecutive keys hash across every shard of a 3-shard cluster.
	for k := 0; k < 32; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	stats := roundTrip(t, conn, in, "STATS")
	if got := statValue(t, stats, "shards="); got != testShards {
		t.Fatalf("STATS shards = %d, want %d: %q", got, testShards, stats)
	}
	if got := statValue(t, stats, "commits="); got < 32 {
		t.Fatalf("aggregate commits = %d, want >= 32 (per-shard counters not summed?): %q", got, stats)
	}
}

// TestSnapshotCommand: SNAPSHOT commits a cluster-wide consistent
// snapshot (barrier manifest + per-shard snapshot), and a restart on the
// same directory recovers through it.
func TestSnapshotCommand(t *testing.T) {
	dir := t.TempDir()
	opts := eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}}
	s, ln := startServer(t, opts)
	conn, in := dialServer(t, ln.Addr())
	for k := 1; k <= 30; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*2)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	if got := roundTrip(t, conn, in, "SNAPSHOT"); got != "OK" {
		t.Fatalf("snapshot: %q", got)
	}
	// Post-snapshot writes live only in the (truncated) WALs.
	for k := 31; k <= 40; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*2)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	conn.Close()
	s.shutdown(ln, time.Second)

	_, ln2 := startServer(t, opts)
	conn2, in2 := dialServer(t, ln2.Addr())
	for k := 1; k <= 40; k++ {
		if got := roundTrip(t, conn2, in2, fmt.Sprintf("GET %d", k)); got != fmt.Sprintf("VALUE %d", k*2) {
			t.Fatalf("key %d lost across snapshot+restart: %q", k, got)
		}
	}
}

// TestConnLimitBusy: a connection beyond -maxconns draws one fast
// "BUSY too many connections" and is closed; once a slot frees, new
// connections serve again.
func TestConnLimitBusy(t *testing.T) {
	lim := defaultLimits()
	lim.maxConns = 2
	s, ln := startClusterServer(t,
		eunomia.ClusterOptions{Shards: testShards, Shard: eunomia.Options{ArenaWords: 1 << 20}}, lim)
	addr := ln.Addr()

	c1, in1 := dialServer(t, addr)
	if got := roundTrip(t, c1, in1, "PUT 1 1"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	c2, in2 := dialServer(t, addr)
	if got := roundTrip(t, c2, in2, "PUT 2 2"); got != "OK" {
		t.Fatalf("put: %q", got)
	}

	// Third connection: refused at the door, then closed.
	c3, in3 := dialServer(t, addr)
	if !in3.Scan() {
		t.Fatal("no reply on the over-limit connection")
	}
	if got := in3.Text(); !strings.HasPrefix(got, "BUSY") {
		t.Fatalf("over-limit connection -> %q, want BUSY", got)
	}
	if in3.Scan() {
		t.Fatalf("over-limit connection stayed open: %q", in3.Text())
	}
	_ = c3
	if got := s.connsRejected.Load(); got == 0 {
		t.Fatal("conns_rejected counter did not move")
	}

	// Freeing a slot restores service (unregistration is asynchronous).
	c1.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatal(err)
		}
		conn.SetDeadline(time.Now().Add(10 * time.Second))
		in := bufio.NewScanner(conn)
		got := roundTrip(t, conn, in, "GET 2")
		conn.Close()
		if got == "VALUE 2" {
			break
		}
		if !strings.HasPrefix(got, "BUSY") {
			t.Fatalf("GET after freeing a slot -> %q", got)
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing a connection")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestInflightShedsBusy: with the admission semaphore full, requests
// draw a fast BUSY instead of queueing — while STATS stays exempt so
// the saturated server remains observable — and service resumes as soon
// as capacity frees.
func TestInflightShedsBusy(t *testing.T) {
	lim := defaultLimits()
	lim.maxInflight = 2
	s, ln := startClusterServer(t,
		eunomia.ClusterOptions{Shards: testShards, Shard: eunomia.Options{ArenaWords: 1 << 20}}, lim)
	conn, in := dialServer(t, ln.Addr())
	if got := roundTrip(t, conn, in, "PUT 1 1"); got != "OK" {
		t.Fatalf("put: %q", got)
	}

	// Saturate the semaphore deterministically.
	s.inflight <- struct{}{}
	s.inflight <- struct{}{}
	for _, req := range []string{"GET 1", "PUT 2 2", "DEL 1", "SCAN 0 4", "SYNC"} {
		if got := roundTrip(t, conn, in, req); got != "BUSY server overloaded" {
			t.Fatalf("%q while saturated -> %q, want BUSY", req, got)
		}
	}
	stats := roundTrip(t, conn, in, "STATS")
	if got := statValue(t, stats, "busy="); got < 5 {
		t.Fatalf("STATS busy = %d, want >= 5: %q", got, stats)
	}

	// Capacity frees: the same connection serves again.
	<-s.inflight
	<-s.inflight
	if got := roundTrip(t, conn, in, "GET 1"); got != "VALUE 1" {
		t.Fatalf("GET after drain -> %q", got)
	}
}

// TestBurstShedsBusy: a connection that pipelines past -maxburst without
// draining replies gets BUSY for the excess requests — every request
// still draws exactly one reply line, and the connection survives.
func TestBurstShedsBusy(t *testing.T) {
	lim := defaultLimits()
	lim.maxBurst = 4
	lim.maxInflight = 0 // isolate the burst limit
	_, ln := startClusterServer(t,
		eunomia.ClusterOptions{Shards: testShards, Shard: eunomia.Options{ArenaWords: 1 << 20}}, lim)
	conn, in := dialServer(t, ln.Addr())

	const burst = 400
	var req strings.Builder
	for i := 0; i < burst; i++ {
		fmt.Fprintf(&req, "PUT %d 7\n", i)
	}
	if _, err := io.WriteString(conn, req.String()); err != nil {
		t.Fatal(err)
	}
	ok, busy := 0, 0
	for i := 0; i < burst; i++ {
		if !in.Scan() {
			t.Fatalf("reply %d missing (ok=%d busy=%d): %v", i, ok, busy, in.Err())
		}
		switch line := in.Text(); {
		case line == "OK":
			ok++
		case strings.HasPrefix(line, "BUSY"):
			busy++
		default:
			t.Fatalf("reply %d = %q", i, line)
		}
	}
	if busy == 0 {
		t.Fatalf("no requests shed from a %d-deep pipelined burst (ok=%d)", burst, ok)
	}
	if ok < lim.maxBurst {
		t.Fatalf("burst head not served: ok=%d, want >= %d", ok, lim.maxBurst)
	}
	// The connection is still good once the client drains replies.
	if got := roundTrip(t, conn, in, "PUT 5 50"); got != "OK" {
		t.Fatalf("PUT after burst -> %q", got)
	}
}

// TestReadTimeoutDisconnectsIdle: a client idle past -read-timeout is
// disconnected (its slot is reclaimed) while the server keeps serving.
func TestReadTimeoutDisconnectsIdle(t *testing.T) {
	lim := defaultLimits()
	lim.readTimeout = 150 * time.Millisecond
	_, ln := startClusterServer(t,
		eunomia.ClusterOptions{Shards: testShards, Shard: eunomia.Options{ArenaWords: 1 << 20}}, lim)
	conn, in := dialServer(t, ln.Addr())
	if got := roundTrip(t, conn, in, "PUT 1 1"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	time.Sleep(500 * time.Millisecond)
	if in.Scan() {
		t.Fatalf("idle connection still served: %q", in.Text())
	}
	assertAlive(t, ln.Addr())
}

// TestStatsFaultFields: STATS carries the fault-domain and serving-edge
// counters, with per-shard health rendered one letter per shard.
func TestStatsFaultFields(t *testing.T) {
	addr := startTestServer(t)
	conn, in := dialServer(t, addr)
	stats := roundTrip(t, conn, in, "STATS")
	for _, field := range []string{"health=", "trips=", "repairs=", "shed=",
		"retries=", "retries_denied=", "busy=", "conns_rejected="} {
		if !strings.Contains(stats, field) {
			t.Fatalf("STATS %q missing %q", stats, field)
		}
	}
	want := "health=" + strings.Repeat("H", testShards)
	if !strings.Contains(stats, want) {
		t.Fatalf("STATS %q: want %q (all shards healthy)", stats, want)
	}
}

// TestServeShardKillAndRepair is the serving-layer chaos test: one shard
// disk dies under a live server — that shard's slice of the key space
// degrades to typed errors while every other shard keeps serving — and
// when the disk comes back, the repair loop re-admits the shard and its
// acknowledged writes are served again, all observed through the socket.
func TestServeShardKillAndRepair(t *testing.T) {
	fses := []*durable.MemFS{
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
		durable.NewMemFS(durable.FaultPlan{}),
	}
	co := eunomia.ClusterOptions{
		Shards: len(fses),
		Shard: eunomia.Options{
			ArenaWords: 1 << 19,
			Durability: eunomia.Durability{Dir: "clusterdb", FS: durable.NewMemFS(durable.FaultPlan{})},
		},
		PerShard: func(i int, o *eunomia.Options) { o.Durability.FS = fses[i] },
		Health:   eunomia.HealthOptions{Window: 8, TripFailures: 2},
		Repair: eunomia.RepairOptions{Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
			Probes: 2, ProbeInterval: time.Millisecond},
	}
	s, ln := startClusterServer(t, co, defaultLimits())
	conn, in := dialServer(t, ln.Addr())

	// Sort keys by owning shard, then ack a batch everywhere.
	var mine, theirs []uint64 // shard 1's keys vs everyone else's
	for k := uint64(1); len(mine) < 60 || len(theirs) < 40; k++ {
		if s.cluster().ShardFor(k) == 1 {
			mine = append(mine, k)
		} else {
			theirs = append(theirs, k)
		}
	}
	for _, k := range append(append([]uint64{}, mine[:40]...), theirs[:40]...) {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*3)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}

	// Kill shard 1's disk and drive its keys until the breaker trips.
	fses[1].Kill()
	tripped := false
	for _, k := range mine[40:] {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d 1", k)); strings.HasPrefix(got, "ERR") &&
			s.cluster().ShardState(1) == eunomia.ShardFailed {
			tripped = true
			break
		}
	}
	if !tripped {
		t.Fatalf("shard 1 never tripped (state %v)", s.cluster().ShardState(1))
	}

	// Degraded service: shard 1's keys fail with the shard error, every
	// other shard keeps serving, and STATS shows the open breaker.
	if got := roundTrip(t, conn, in, fmt.Sprintf("GET %d", mine[0])); !strings.HasPrefix(got, "ERR") ||
		!strings.Contains(got, "shard 1") {
		t.Fatalf("dead-shard GET -> %q, want ERR ...shard 1", got)
	}
	for _, k := range theirs[:40] {
		if got := roundTrip(t, conn, in, fmt.Sprintf("GET %d", k)); got != fmt.Sprintf("VALUE %d", k*3) {
			t.Fatalf("healthy-shard GET %d -> %q", k, got)
		}
	}
	if stats := roundTrip(t, conn, in, "STATS"); !strings.Contains(stats, "trips=") ||
		statValue(t, stats, "trips=") == 0 {
		t.Fatalf("STATS did not record the trip: %q", stats)
	}

	// The disk returns; the repair loop replays the WAL, runs probation,
	// and re-admits. Watch it happen through STATS.
	fses[1].Reboot()
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats := roundTrip(t, conn, in, "STATS")
		if strings.Contains(stats, "health="+strings.Repeat("H", len(fses))) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 never re-admitted: %q", stats)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Every write acknowledged before the kill is served again.
	for _, k := range mine[:40] {
		if got := roundTrip(t, conn, in, fmt.Sprintf("GET %d", k)); got != fmt.Sprintf("VALUE %d", k*3) {
			t.Fatalf("re-admitted shard lost key %d: %q", k, got)
		}
	}
}

// statValue extracts one key=value counter from a STATS line.
func statValue(t *testing.T, stats, key string) uint64 {
	t.Helper()
	i := strings.Index(stats, key)
	if i < 0 {
		t.Fatalf("STATS %q missing %q", stats, key)
	}
	var v uint64
	fmt.Sscanf(stats[i+len(key):], "%d", &v)
	return v
}
