package main

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"eunomia"
)

// testShards is the cluster width the protocol tests run against: >1 so
// routing, the merged SCAN, and cross-shard STATS aggregation are all
// exercised by every test.
const testShards = 3

// startTestServer brings up the server on a loopback port.
func startTestServer(t *testing.T) net.Addr {
	t.Helper()
	return startTestServerOpts(t, eunomia.Options{ArenaWords: 1 << 20})
}

// startTestServerOpts is startTestServer with explicit per-shard options.
func startTestServerOpts(t *testing.T, opts eunomia.Options) net.Addr {
	t.Helper()
	_, ln := startServer(t, opts)
	return ln.Addr()
}

// startServer brings up a server over a testShards-wide cluster and
// returns it with its listener, for tests that drive the
// graceful-shutdown path directly.
func startServer(t *testing.T, opts eunomia.Options) (*server, net.Listener) {
	t.Helper()
	c, err := eunomia.OpenCluster(eunomia.ClusterOptions{Shards: testShards, Shard: opts})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(c)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close(); c.Close() })
	go s.run(ln)
	return s, ln
}

func roundTrip(t *testing.T, conn net.Conn, in *bufio.Scanner, req string) string {
	t.Helper()
	if _, err := fmt.Fprintln(conn, req); err != nil {
		t.Fatal(err)
	}
	if !in.Scan() {
		t.Fatalf("no reply to %q", req)
	}
	return in.Text()
}

func TestProtocol(t *testing.T) {
	addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)

	cases := []struct{ req, want string }{
		{"GET 5", "NOT_FOUND"},
		{"PUT 5 50", "OK"},
		{"GET 5", "VALUE 50"},
		{"PUT 5 51", "OK"},
		{"GET 5", "VALUE 51"},
		{"DEL 5", "OK"},
		{"DEL 5", "NOT_FOUND"},
		{"GET 5", "NOT_FOUND"},
		{"BOGUS", `ERR unknown command "BOGUS"`},
		{"PUT x y", "ERR"},
		{"PUT 1 18446744073709551615", "ERR eunomia: value ^uint64(0) is reserved"},
	}
	for _, c := range cases {
		got := roundTrip(t, conn, in, c.req)
		if !strings.HasPrefix(got, c.want) && got != c.want {
			t.Fatalf("%q -> %q, want %q", c.req, got, c.want)
		}
	}
}

func TestProtocolScan(t *testing.T) {
	addr := startTestServer(t)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	in := bufio.NewScanner(conn)

	for k := 10; k <= 30; k += 2 {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*10)); got != "OK" {
			t.Fatalf("put: %q", got)
		}
	}
	fmt.Fprintln(conn, "SCAN 14 4")
	var pairs []string
	for in.Scan() {
		line := in.Text()
		if line == "END" {
			break
		}
		pairs = append(pairs, line)
	}
	want := []string{"PAIR 14 140", "PAIR 16 160", "PAIR 18 180", "PAIR 20 200"}
	if len(pairs) != len(want) {
		t.Fatalf("scan: %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Fatalf("scan[%d] = %q, want %q", i, pairs[i], want[i])
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startTestServer(t)
	const clients = 4
	done := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			conn, err := net.Dial("tcp", addr.String())
			if err != nil {
				done <- err
				return
			}
			defer conn.Close()
			in := bufio.NewScanner(conn)
			base := c * 1000
			for i := 0; i < 200; i++ {
				fmt.Fprintf(conn, "PUT %d %d\n", base+i, i)
				if !in.Scan() || in.Text() != "OK" {
					done <- fmt.Errorf("client %d: bad put reply", c)
					return
				}
			}
			for i := 0; i < 200; i++ {
				fmt.Fprintf(conn, "GET %d\n", base+i)
				if !in.Scan() || in.Text() != fmt.Sprintf("VALUE %d", i) {
					done <- fmt.Errorf("client %d: bad get reply %q", c, in.Text())
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// dialServer opens a client connection with a read deadline so a wedged
// server fails the test instead of hanging it.
func dialServer(t *testing.T, addr net.Addr) (net.Conn, *bufio.Scanner) {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	return conn, bufio.NewScanner(conn)
}

// assertAlive proves the server still accepts and serves new connections.
func assertAlive(t *testing.T, addr net.Addr) {
	t.Helper()
	conn, in := dialServer(t, addr)
	if got := roundTrip(t, conn, in, "PUT 777 888"); got != "OK" {
		t.Fatalf("server unhealthy: PUT -> %q", got)
	}
	if got := roundTrip(t, conn, in, "GET 777"); got != "VALUE 888" {
		t.Fatalf("server unhealthy: GET -> %q", got)
	}
}

// TestMalformedRequests: every malformed line must draw an ERR reply (or,
// for unknown verbs, the diagnostic) — never a panic, never a dropped
// connection, and the server keeps serving afterwards.
func TestMalformedRequests(t *testing.T) {
	addr := startTestServer(t)
	conn, in := dialServer(t, addr)

	cases := []struct{ req, wantPrefix string }{
		{"GET", "ERR"},
		{"GET abc", "ERR"},
		{"GET 99999999999999999999999", "ERR"}, // > MaxUint64
		{"GET 5 6", "ERR"},                     // arity
		{"PUT", "ERR"},
		{"PUT 1", "ERR"},
		{"PUT 1 2 3", "ERR"},
		{"PUT -1 5", "ERR"},
		{"DEL", "ERR"},
		{"DEL 18446744073709551616", "ERR"}, // MaxUint64+1
		{"SCAN 1", "ERR"},
		{"SCAN x y", "ERR"},
		{"\x00\x01garbage\x02", "ERR"},
		{"   ", ""},            // blank: no reply, next case must still work
		{"get 5", "NOT_FOUND"}, // verbs are case-insensitive
	}
	for _, c := range cases {
		if c.wantPrefix == "" {
			fmt.Fprintln(conn, c.req)
			continue
		}
		got := roundTrip(t, conn, in, c.req)
		if !strings.HasPrefix(got, c.wantPrefix) {
			t.Fatalf("%q -> %q, want prefix %q", c.req, got, c.wantPrefix)
		}
	}
	assertAlive(t, addr)
}

// TestScanLengthClamp: an adversarial SCAN count (MaxUint64 would convert
// to a negative int) must produce a bounded, END-terminated reply.
func TestScanLengthClamp(t *testing.T) {
	addr := startTestServer(t)
	conn, in := dialServer(t, addr)
	for k := 0; k < 10; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k)); got != "OK" {
			t.Fatalf("put: %q", got)
		}
	}
	for _, req := range []string{
		"SCAN 0 18446744073709551615", // int(n) < 0
		"SCAN 0 9223372036854775807",  // int(n) huge
	} {
		fmt.Fprintln(conn, req)
		lines := 0
		for in.Scan() {
			if in.Text() == "END" {
				break
			}
			lines++
			if lines > maxScan {
				t.Fatalf("%q: reply exceeded the maxScan clamp", req)
			}
		}
		if err := in.Err(); err != nil {
			t.Fatalf("%q: %v", req, err)
		}
		if lines != 10 {
			t.Fatalf("%q: %d pairs, want 10", req, lines)
		}
	}
	assertAlive(t, addr)
}

// TestOversizedLine: a request line beyond the scanner's token limit must
// tear down only that connection — cleanly, with no panic — and leave the
// server serving.
func TestOversizedLine(t *testing.T) {
	addr := startTestServer(t)
	conn, _ := dialServer(t, addr)
	huge := strings.Repeat("A", 128<<10) // > bufio.MaxScanTokenSize
	if _, err := fmt.Fprintf(conn, "GET %s\n", huge); err != nil && !errors.Is(err, net.ErrClosed) {
		// The server may close mid-write; either way the write must not
		// wedge the test.
		t.Logf("write: %v", err)
	}
	// The server drops the connection: reads drain to EOF/reset.
	io.Copy(io.Discard, conn)
	assertAlive(t, addr)
}

// TestTruncatedRequestAndAbruptDisconnect: clients that vanish mid-line or
// mid-session must not wedge or kill the server.
func TestTruncatedRequestAndAbruptDisconnect(t *testing.T) {
	addr := startTestServer(t)

	// Truncated final request: no trailing newline, then an orderly close.
	conn1, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(conn1, "PUT 1") // half a request
	conn1.Close()

	// Abrupt disconnect with a request in flight (RST via SO_LINGER 0).
	conn2, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(conn2, "PUT 2 2")
	if tc, ok := conn2.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn2.Close()

	assertAlive(t, addr)
}

// TestStatsResilienceFields: the STATS line must carry the resilience
// counters, and a resilience-enabled server must serve the same protocol.
func TestStatsResilienceFields(t *testing.T) {
	addr := startTestServerOpts(t, eunomia.Options{ArenaWords: 1 << 20, Resilience: true})
	conn, in := dialServer(t, addr)
	if got := roundTrip(t, conn, in, "PUT 9 90"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	if got := roundTrip(t, conn, in, "GET 9"); got != "VALUE 90" {
		t.Fatalf("get: %q", got)
	}
	stats := roundTrip(t, conn, in, "STATS")
	for _, field := range []string{"commits=", "aborts=", "fallbacks=", "backoff=", "degraded=", "watchdog=", "storms="} {
		if !strings.Contains(stats, field) {
			t.Fatalf("STATS %q missing %q", stats, field)
		}
	}
}

// TestGracefulShutdown drives the SIGTERM path's worker directly: the
// listener stops accepting, in-flight connections drain, idle connections
// are cancelled at the drain deadline, and the DB ends up closed with
// every acknowledged write flushed.
func TestGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	s, ln := startServer(t, eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}})
	addr := ln.Addr()

	// An active client completes a durable write before shutdown.
	conn, in := dialServer(t, addr)
	if got := roundTrip(t, conn, in, "PUT 1 11"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	// An idle client sits in a blocked read; the drain deadline must
	// cancel it rather than hang shutdown forever.
	idle, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()

	done := make(chan struct{})
	go func() {
		s.shutdown(ln, 300*time.Millisecond)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown wedged past the drain deadline")
	}

	// New connections must be refused (or immediately closed).
	if c, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := c.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("server accepted a connection after shutdown")
		}
		c.Close()
	}

	// The acknowledged write survived: a fresh server on the same
	// directory recovers it.
	addr2 := startTestServerOpts(t, eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}})
	conn2, in2 := dialServer(t, addr2)
	if got := roundTrip(t, conn2, in2, "GET 1"); got != "VALUE 11" {
		t.Fatalf("write lost across graceful shutdown: %q", got)
	}
}

// TestDurableRestartPreservesData is the protocol-level durability
// round-trip: PUT/DEL through sockets, shut down, restart on the same
// directory, and observe the identical state (with recovery visible in
// STATS).
func TestDurableRestartPreservesData(t *testing.T) {
	dir := t.TempDir()
	opts := eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}}

	s, ln := startServer(t, opts)
	conn, in := dialServer(t, ln.Addr())
	for k := 1; k <= 40; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*3)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	for k := 5; k <= 40; k += 5 {
		if got := roundTrip(t, conn, in, fmt.Sprintf("DEL %d", k)); got != "OK" {
			t.Fatalf("del %d: %q", k, got)
		}
	}
	if got := roundTrip(t, conn, in, "SYNC"); got != "OK" {
		t.Fatalf("sync: %q", got)
	}
	stats := roundTrip(t, conn, in, "STATS")
	if !strings.Contains(stats, "flushes=") {
		t.Fatalf("durable STATS missing flush counters: %q", stats)
	}
	conn.Close()
	s.shutdown(ln, time.Second)

	_, ln2 := startServer(t, opts)
	conn2, in2 := dialServer(t, ln2.Addr())
	for k := 1; k <= 40; k++ {
		got := roundTrip(t, conn2, in2, fmt.Sprintf("GET %d", k))
		if k%5 == 0 {
			if got != "NOT_FOUND" {
				t.Fatalf("deleted key %d resurrected: %q", k, got)
			}
		} else if got != fmt.Sprintf("VALUE %d", k*3) {
			t.Fatalf("key %d lost across restart: %q", k, got)
		}
	}
	stats2 := roundTrip(t, conn2, in2, "STATS")
	if !strings.Contains(stats2, "replayed=") {
		t.Fatalf("post-recovery STATS missing replay counter: %q", stats2)
	}
}

// TestOpsAfterCloseReturnErr: a server whose DB has been closed answers
// requests with ERR instead of panicking or acknowledging.
func TestOpsAfterCloseReturnErr(t *testing.T) {
	s, ln := startServer(t, eunomia.Options{ArenaWords: 1 << 20})
	conn, in := dialServer(t, ln.Addr())
	if got := roundTrip(t, conn, in, "PUT 1 1"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	s.c.Close()
	for _, req := range []string{"GET 1", "PUT 2 2", "DEL 1", "SCAN 0 5"} {
		got := roundTrip(t, conn, in, req)
		if !strings.HasPrefix(got, "ERR") || !strings.Contains(got, "closed") {
			t.Fatalf("%q on closed DB -> %q, want ERR ...closed", req, got)
		}
	}
}

// TestStatsHeatmap: with the contention heatmap enabled, STATS carries
// the heat counters, and once aborts have occurred the hottest sites are
// listed. The abort breakdown keys from the unified Metrics snapshot
// appear as soon as any abort happens.
func TestStatsHeatmap(t *testing.T) {
	addr := startTestServerOpts(t, eunomia.Options{ArenaWords: 1 << 20,
		Observability: eunomia.Observability{Heatmap: true}})
	conn, in := dialServer(t, addr)
	if got := roundTrip(t, conn, in, "PUT 5 50"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	stats := roundTrip(t, conn, in, "STATS")
	if !strings.Contains(stats, "heat_aborts=") {
		t.Fatalf("heatmap STATS missing heat counter: %q", stats)
	}
	// STATS is server-wide: a second connection's writes show up too.
	conn2, in2 := dialServer(t, addr)
	if got := roundTrip(t, conn2, in2, "PUT 6 60"); got != "OK" {
		t.Fatalf("put: %q", got)
	}
	s1 := statValue(t, roundTrip(t, conn, in, "STATS"), "commits=")
	if s1 < 2 {
		t.Fatalf("server-wide commits = %d, want >= 2", s1)
	}
}

// TestStatsAggregatesShards: STATS reports the cluster-wide aggregate —
// the shard count appears, and writes that hash to different shards are
// all counted in one commits= figure.
func TestStatsAggregatesShards(t *testing.T) {
	addr := startTestServer(t)
	conn, in := dialServer(t, addr)
	// 32 consecutive keys hash across every shard of a 3-shard cluster.
	for k := 0; k < 32; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	stats := roundTrip(t, conn, in, "STATS")
	if got := statValue(t, stats, "shards="); got != testShards {
		t.Fatalf("STATS shards = %d, want %d: %q", got, testShards, stats)
	}
	if got := statValue(t, stats, "commits="); got < 32 {
		t.Fatalf("aggregate commits = %d, want >= 32 (per-shard counters not summed?): %q", got, stats)
	}
}

// TestSnapshotCommand: SNAPSHOT commits a cluster-wide consistent
// snapshot (barrier manifest + per-shard snapshot), and a restart on the
// same directory recovers through it.
func TestSnapshotCommand(t *testing.T) {
	dir := t.TempDir()
	opts := eunomia.Options{ArenaWords: 1 << 20,
		Durability: eunomia.Durability{Dir: dir}}
	s, ln := startServer(t, opts)
	conn, in := dialServer(t, ln.Addr())
	for k := 1; k <= 30; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*2)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	if got := roundTrip(t, conn, in, "SNAPSHOT"); got != "OK" {
		t.Fatalf("snapshot: %q", got)
	}
	// Post-snapshot writes live only in the (truncated) WALs.
	for k := 31; k <= 40; k++ {
		if got := roundTrip(t, conn, in, fmt.Sprintf("PUT %d %d", k, k*2)); got != "OK" {
			t.Fatalf("put %d: %q", k, got)
		}
	}
	conn.Close()
	s.shutdown(ln, time.Second)

	_, ln2 := startServer(t, opts)
	conn2, in2 := dialServer(t, ln2.Addr())
	for k := 1; k <= 40; k++ {
		if got := roundTrip(t, conn2, in2, fmt.Sprintf("GET %d", k)); got != fmt.Sprintf("VALUE %d", k*2) {
			t.Fatalf("key %d lost across snapshot+restart: %q", k, got)
		}
	}
}

// statValue extracts one key=value counter from a STATS line.
func statValue(t *testing.T, stats, key string) uint64 {
	t.Helper()
	i := strings.Index(stats, key)
	if i < 0 {
		t.Fatalf("STATS %q missing %q", stats, key)
	}
	var v uint64
	fmt.Sscanf(stats[i+len(key):], "%d", &v)
	return v
}
