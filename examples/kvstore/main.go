// kvstore runs a YCSB-style key-value workload — the scenario the paper's
// introduction motivates — against two tree implementations and compares
// their behavior under a contended Zipfian key mix.
//
// It uses DB.RunVirtual, so the 16 "threads" execute in deterministic
// virtual time: the throughput, abort and wasted-cycle numbers are
// reproducible bit-for-bit and meaningful even on a single-core host.
package main

import (
	"fmt"
	"log"

	"eunomia"
	"eunomia/internal/vclock"
	"eunomia/internal/workload"
)

const (
	keySpace = 50_000
	threads  = 16
	opsEach  = 2_000
	theta    = 0.95 // heavy skew: the contention regime the paper targets
)

func runStore(kind eunomia.Kind) {
	db, err := eunomia.Open(eunomia.Options{Kind: kind, ArenaWords: 1 << 22})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load phase: populate half the key space.
	loader := db.NewThread()
	workload.ForEachPreload(keySpace, 50, func(key uint64) {
		loader.Put(key, key)
	})

	// Transaction phase: a 50/50 get/put Zipfian mix per thread.
	res := db.RunVirtual(threads, func(t *eunomia.Thread) {
		stream := workload.NewStream(
			workload.Spec{Kind: workload.Zipfian, N: keySpace, Theta: theta},
			workload.DefaultMix)
		rng := vclock.NewRand(7)
		for i := 0; i < opsEach; i++ {
			op := stream.Next(rng)
			switch op.Kind {
			case workload.OpGet:
				t.Get(op.Key)
			case workload.OpPut:
				t.Put(op.Key, op.Key+1)
			}
		}
	})

	ops := float64(threads * opsEach)
	fmt.Printf("%-13s %8.2f M ops/s   aborts/op=%.3f   fallbacks=%d\n",
		kind.String()+":", ops/res.Seconds/1e6,
		float64(res.Stats.Aborts)/ops, res.Stats.Fallbacks)
	for reason, n := range res.Stats.AbortsByReason {
		fmt.Printf("               %-14s %d\n", reason, n)
	}
}

func main() {
	fmt.Printf("YCSB-style store: %d keys, %d threads, zipfian theta=%.2f, 50/50 get/put\n\n",
		keySpace, threads, theta)
	runStore(eunomia.HTMBTree)
	runStore(eunomia.EunoBTree)
	fmt.Println("\nUnder this contention the monolithic-transaction baseline burns its")
	fmt.Println("attempts on conflicts and serializes on the fallback lock, while the")
	fmt.Println("Eunomia design keeps retries confined to the leaf region.")
}
