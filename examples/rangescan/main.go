// rangescan demonstrates the ordered-index side of Euno-B+Tree: although
// records live scattered across leaf segments (unsorted between segments),
// range queries still deliver keys in order — per leaf, the scan locks the
// node, merge-sorts segments and stable region through a transient
// reserved-keys buffer, and emits the result (Section 4.2.4).
//
// The scenario is a time-series event log: concurrent appenders write
// timestamped events while a reader issues windowed range queries.
package main

import (
	"fmt"
	"log"

	"eunomia"
)

func main() {
	db, err := eunomia.Open(eunomia.Options{ArenaWords: 1 << 22})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Concurrent appenders (virtual time): 8 writers interleave events,
	// each tagging values with its writer id.
	const writers, events = 8, 2_000
	res := db.RunVirtual(writers, func(t *eunomia.Thread) {
		id := uint64(0)
		for i := 0; i < events; i++ {
			// Timestamps interleave across writers: 8, 16, 24, ...
			ts := uint64(i)*writers + id + 1
			if err := t.Put(ts, ts<<8|id); err != nil {
				log.Fatal(err)
			}
			id = (id + 1) % writers
		}
	})
	fmt.Printf("appended %d events in %.2f ms of virtual time (%d aborts)\n\n",
		writers*events, res.Seconds*1e3, res.Stats.Aborts)

	reader := db.NewThread()

	// Windowed range query: 20 events starting at timestamp 5000.
	fmt.Println("window [5000, ...), 20 events:")
	prev := uint64(0)
	n, _ := reader.Scan(5000, 20, func(ts, val uint64) bool {
		if ts < prev {
			log.Fatalf("scan out of order: %d after %d", ts, prev)
		}
		prev = ts
		fmt.Printf("  ts=%-6d payload=%#x\n", ts, val)
		return true
	})
	fmt.Printf("visited %d events, strictly ascending\n\n", n)

	// Aggregate over a large window: count events per writer.
	var perWriter [writers]int
	reader.Scan(1, 100_000, func(ts, val uint64) bool {
		perWriter[val&0xff]++
		return true
	})
	fmt.Println("events per writer over the full log:")
	for w, c := range perWriter {
		fmt.Printf("  writer %d: %d\n", w, c)
	}

	m := db.Metrics().Memory
	fmt.Printf("\nreserved-keys buffers after scans: %d B (transient, freed)\n", m.ReservedBytes)
}
