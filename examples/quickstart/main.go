// Quickstart: open a Euno-B+Tree store, do point operations and a range
// query, and inspect transaction statistics.
package main

import (
	"fmt"
	"log"

	"eunomia"
)

func main() {
	db, err := eunomia.Open(eunomia.Options{}) // defaults: Euno-B+Tree, 128 MiB arena
	if err != nil {
		log.Fatal(err)
	}
	// Program against the unified Store interface: *DB satisfies it, and
	// so does the sharded *Cluster — swap eunomia.Open for
	// eunomia.OpenCluster and nothing below changes.
	var store eunomia.Store = db
	defer store.Close()

	// Every worker goroutine gets its own Handle.
	th := store.NewHandle()
	defer th.Close()

	// Point writes and reads.
	for key := uint64(1); key <= 100; key++ {
		if err := th.Put(key, key*key); err != nil {
			log.Fatal(err)
		}
	}
	if v, ok, _ := th.Get(12); ok {
		fmt.Printf("get(12) = %d\n", v)
	}

	// Updates are in-place; deletes tombstone and clean up lazily.
	th.Put(12, 999)
	v, _, _ := th.Get(12)
	fmt.Printf("after update, get(12) = %d\n", v)
	th.Delete(13)
	if _, ok, _ := th.Get(13); !ok {
		fmt.Println("get(13) after delete: not found")
	}

	// Range queries: ordered iteration despite the partitioned leaf
	// layout (segments are merge-sorted through the reserved-keys
	// buffer). Scan takes a callback and a count limit; Range is the Go
	// 1.23 iterator form over a closed key interval.
	fmt.Print("scan from 10, 8 keys:")
	th.Scan(10, 8, func(k, v uint64) bool {
		fmt.Printf(" %d", k)
		return true
	})
	fmt.Println()
	fmt.Print("range [20, 25]:")
	for k, v := range th.Range(20, 25) {
		fmt.Printf(" %d=%d", k, v)
	}
	fmt.Println()

	// Store.Metrics is the unified snapshot: transactional counters with
	// the paper's abort decomposition, memory accounting, tree
	// maintenance, and — when enabled — resilience, durability and
	// contention sections.
	m := store.Metrics()
	fmt.Printf("stats: %d commits, %d aborts, %d fallbacks\n",
		m.Tx.Commits, m.Tx.Aborts, m.Tx.Fallbacks)
	fmt.Printf("memory: %d B live (%d B CCM)\n",
		m.Memory.LiveBytes, m.Memory.CCMBytes)
}
