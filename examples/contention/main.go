// contention demonstrates the fourth Eunomia guideline — adaptive
// concurrency control — by driving a workload through three phases:
//
//  1. uniform accesses (cold leaves: the conflict control module is
//     bypassed and operations pay almost no synchronization overhead),
//  2. extreme skew on a hot key range (the per-leaf contention detector
//     heats up and engages the CCM, absorbing conflicts),
//  3. uniform again (scores decay, leaves cool, the CCM disengages).
//
// The per-phase statistics show the detector following the workload.
package main

import (
	"fmt"
	"log"

	"eunomia"
	"eunomia/internal/vclock"
	"eunomia/internal/workload"
)

const (
	keySpace = 20_000
	threads  = 12
	opsEach  = 2_500
)

func phase(db *eunomia.DB, name string, spec workload.Spec) {
	res := db.RunVirtual(threads, func(t *eunomia.Thread) {
		gen := spec.New()
		rng := vclock.NewRand(uint64(len(name)) + 3)
		for i := 0; i < opsEach; i++ {
			key := workload.KeyOfRank(gen.Next(rng))
			if i%2 == 0 {
				t.Put(key, key)
			} else {
				t.Get(key)
			}
		}
	})
	ops := float64(threads * opsEach)
	fmt.Printf("%-22s %7.2f M ops/s   aborts/op=%.4f   fallbacks=%d   wasted=%d cycles\n",
		name, ops/res.Seconds/1e6, float64(res.Stats.Aborts)/ops,
		res.Stats.Fallbacks, res.Stats.WastedCycles)
}

func main() {
	db, err := eunomia.Open(eunomia.Options{ArenaWords: 1 << 22})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	loader := db.NewThread()
	workload.ForEachPreload(keySpace, 60, func(key uint64) {
		loader.Put(key, key)
	})

	uniform := workload.Spec{Kind: workload.Uniform, N: keySpace}
	skewed := workload.Spec{Kind: workload.Zipfian, N: keySpace, Theta: 0.99}

	fmt.Printf("adaptive concurrency control across workload phases (%d threads)\n\n", threads)
	phase(db, "phase 1: uniform", uniform)
	phase(db, "phase 2: zipf 0.99", skewed)
	phase(db, "phase 3: uniform again", uniform)
	fmt.Println("\nThe detector is per-leaf: phase 2 heats only the hot leaves, and the")
	fmt.Println("decayed scores let phase 3 run CCM-free again.")
}
