package eunomia

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestClusterRangeMergedOrder: the merged iterator yields every key in
// [from, to] exactly once, globally ascending, no matter which shard owns
// it — hash partitioning interleaves neighbors across shards, so this is
// the k-way merge's correctness test.
func TestClusterRangeMergedOrder(t *testing.T) {
	c := testCluster(t, 3, HashPartition)
	sess := c.NewSession()
	var want []uint64
	for k := uint64(1); k <= 500; k++ {
		key := k * 2654435761 % 100_000 // scattered, deterministic
		if err := sess.Put(key, key+1); err != nil {
			t.Fatal(err)
		}
		want = append(want, key)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	// Dedup (the generator may collide).
	dedup := want[:0]
	for i, k := range want {
		if i == 0 || k != want[i-1] {
			dedup = append(dedup, k)
		}
	}
	want = dedup

	var got []uint64
	prev, have := uint64(0), false
	for k, v := range sess.Range(0, ^uint64(0)) {
		if have && k <= prev {
			t.Fatalf("merge emitted %d after %d (not strictly increasing)", k, prev)
		}
		if v != k+1 {
			t.Fatalf("key %d carries value %d, want %d", k, v, k+1)
		}
		prev, have = k, true
		got = append(got, k)
	}
	if len(got) != len(want) {
		t.Fatalf("merged range yielded %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Windowed: both endpoints inclusive, cross-shard.
	lo, hi := want[10], want[40]
	n := 0
	for k := range sess.Range(lo, hi) {
		if k < lo || k > hi {
			t.Fatalf("window [%d,%d] yielded %d", lo, hi, k)
		}
		n++
	}
	if n != 31 {
		t.Fatalf("window yielded %d keys, want 31", n)
	}
}

// TestClusterRangeShardBoundaries: under RangePartition, keys on both
// sides of every shard boundary appear in order — the merge hands over
// from shard i's iterator to shard i+1's exactly at the cut.
func TestClusterRangeShardBoundaries(t *testing.T) {
	c := testCluster(t, 4, RangePartition)
	sess := c.NewSession()
	width := ^uint64(0)/4 + 1
	var want []uint64
	for i := uint64(0); i < 4; i++ {
		base := i * width
		for _, off := range []uint64{0, 1, width - 2, width - 1} {
			key := base + off
			if err := sess.Put(key, 1); err != nil {
				t.Fatal(err)
			}
			want = append(want, key)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	for k := range sess.Range(0, ^uint64(0)) {
		got = append(got, k)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("boundary walk[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// A window straddling one boundary sees exactly the four keys around it.
	var win []uint64
	for k := range sess.Range(width-2, width+1) {
		win = append(win, k)
	}
	if len(win) != 4 || win[0] != width-2 || win[3] != width+1 {
		t.Fatalf("boundary window = %v", win)
	}
}

// TestClusterRangeEmptyShards: shards with no keys in the window
// contribute nothing and cost nothing — including fully empty shards.
func TestClusterRangeEmptyShards(t *testing.T) {
	c := testCluster(t, 4, RangePartition)
	sess := c.NewSession()
	// All keys land in shard 0's slice; shards 1-3 stay empty.
	for k := uint64(10); k < 30; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for range sess.Range(0, ^uint64(0)) {
		n++
	}
	if n != 20 {
		t.Fatalf("range over mostly-empty cluster yielded %d, want 20", n)
	}
	// A window entirely inside an empty shard yields nothing.
	width := ^uint64(0)/4 + 1
	for k := range sess.Range(width, width+1000) {
		t.Fatalf("empty shard yielded %d", k)
	}
	// Scan agrees and reports the visit count.
	cnt, err := sess.Scan(0, 100, func(k, v uint64) bool { return true })
	if err != nil || cnt != 20 {
		t.Fatalf("Scan = %d,%v, want 20", cnt, err)
	}
	// Scan stops at max and on fn=false.
	cnt, _ = sess.Scan(0, 5, func(k, v uint64) bool { return true })
	if cnt != 5 {
		t.Fatalf("Scan max clamp = %d, want 5", cnt)
	}
	cnt, _ = sess.Scan(0, 100, func(k, v uint64) bool { return k < 12 })
	if cnt != 3 {
		t.Fatalf("Scan early stop = %d, want 3", cnt)
	}
}

// TestClusterRangeEarlyBreakReleasesIterators: breaking out of a merged
// Range must stop every per-shard pull iterator — iter.Pull coroutines are
// goroutines, so an unstopped head is a leak this test counts.
func TestClusterRangeEarlyBreakReleasesIterators(t *testing.T) {
	c := testCluster(t, 4, HashPartition)
	sess := c.NewSession()
	for k := uint64(0); k < 400; k++ {
		if err := sess.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		n := 0
		for range sess.Range(0, ^uint64(0)) {
			n++
			if n == 3 {
				break
			}
		}
	}
	// Stopped pull iterators unwind promptly; allow the scheduler a moment.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= before {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines %d > %d before 50 broken ranges: per-shard iterators leaked", g, before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterRangeConcurrentInserts: a merged range racing concurrent
// writers on every shard must stay strictly increasing and duplicate-free
// (per-key snapshot semantics — which concurrent keys appear is
// unspecified, but order and uniqueness are not).
func TestClusterRangeConcurrentInserts(t *testing.T) {
	c := testCluster(t, 3, HashPartition)
	reader := c.NewSession()
	for k := uint64(0); k < 1000; k += 2 {
		if err := reader.Put(k, 1); err != nil {
			t.Fatal(err)
		}
	}
	var stopFlag atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.NewSession()
			for k := uint64(w*1000 + 1); !stopFlag.Load(); k += 2 {
				if err := sess.Put(k%1000, 2); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for round := 0; round < 30; round++ {
		prev, have := uint64(0), false
		n := 0
		for k := range reader.Range(0, 999) {
			if have && k <= prev {
				t.Fatalf("round %d: %d after %d under concurrent inserts", round, k, prev)
			}
			prev, have = k, true
			n++
		}
		if n < 500 {
			t.Fatalf("round %d: preloaded keys missing from range (%d < 500)", round, n)
		}
	}
	stopFlag.Store(true)
	wg.Wait()
}
